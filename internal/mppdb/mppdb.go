// Package mppdb simulates a massively parallel processing relational
// database instance — the execution substrate the paper runs its tenants on.
//
// The model captures the two behaviours the paper's consolidation design is
// built around (Fig 1.1):
//
//   - Isolated latency follows the query class' scale-out profile (package
//     queries): near-linear for scan-dominated queries, plateauing for
//     shuffle/coordination-heavy ones.
//   - Concurrent analytical queries on the same instance contend for I/O.
//     We model the instance as a processor-sharing server: a query's service
//     demand equals its isolated latency on this instance, and k concurrent
//     queries each progress at rate 1/k. Two concurrent Q1 instances thus
//     take ≈2× their isolated latency (the paper's 2T-CON line), while
//     sequential submissions are unaffected (xT-SEQ). The server is
//     weight-fair: under shared-work execution (SetSharing) a merged batch
//     holds one scheduler share per member, so merging reduces work without
//     reducing the members' share of the machine.
//
// Instances also model tenant deployment (bulk loading, package cluster's
// timing model), degraded operation under node failure, and report per-query
// results with slowdown relative to both the instance-isolated latency and
// the tenant's SLA target.
//
// Per-tenant state (deployed data, running counts) is keyed by interned
// tenant refs (package tenant): flat slices indexed by the group-local dense
// Ref replace the string-keyed maps that used to dominate the submit
// profile. The string API remains as a thin shim over the ref path.
package mppdb

import (
	"fmt"
	"sort"

	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tenant"
)

// State is the lifecycle state of an MPPDB instance.
type State int

const (
	// Provisioning: machine nodes are starting and the MPPDB is being
	// initialized.
	Provisioning State = iota
	// Loading: tenant data is being bulk loaded.
	Loading
	// Ready: the instance serves queries.
	Ready
	// Stopped: the instance was shut down.
	Stopped
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Provisioning:
		return "provisioning"
	case Loading:
		return "loading"
	case Ready:
		return "ready"
	case Stopped:
		return "stopped"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Result describes one completed query execution.
type Result struct {
	Tenant string
	Class  *queries.Class
	Submit sim.Time
	Finish sim.Time
	// Isolated is what the query would have taken on this instance with no
	// concurrent queries.
	Isolated sim.Time
	// MaxConcurrency is the largest number of queries resident on the
	// instance at any point during this execution (including this one).
	// Under shared-work execution residents include queries queued for the
	// next batch of their class, so the 2T-CON "two concurrent queries"
	// regression metric keeps its meaning in either mode.
	MaxConcurrency int
	// EffectiveConcurrency is the largest number of processor-sharing
	// participants during this execution: shared batches count once however
	// many member queries they merge. Equal to MaxConcurrency when sharing
	// is off.
	EffectiveConcurrency int
}

// Latency returns the observed wall-clock latency.
func (r Result) Latency() sim.Time { return r.Finish - r.Submit }

// Slowdown returns observed latency / isolated latency on this instance;
// 1.0 means the query ran as if alone.
func (r Result) Slowdown() float64 {
	if r.Isolated <= 0 {
		return 1
	}
	return float64(r.Latency()) / float64(r.Isolated)
}

// exec is one in-flight query. Execs are recycled through a per-instance
// freelist; idx tracks the slot in the live slice so removal is O(1).
type exec struct {
	id        int64
	ref       tenant.Ref
	class     *queries.Class
	submit    sim.Time
	isolated  sim.Time
	remaining float64 // seconds of dedicated-instance work left
	maxConc   int
	idx       int // position in Instance.execs; -1 once finished
	// tag correlates the pooled completion path (SubmitTagged /
	// SetCompletionHandler); done is the legacy per-call closure and is nil
	// on the tagged path.
	tag    uint64
	tagged bool
	done   func(Result)
	// members is non-nil only under shared-work execution: the logical
	// queries merged into this batch. ref/tag/tagged/done above are unused
	// then — each member carries its own. maxIso/sumIso aggregate the
	// members' isolated latencies (seconds) so a late joiner's marginal
	// shared demand can be derived incrementally.
	members []batchMember
	maxIso  float64
	sumIso  float64
}

// liveKey identifies an attachable in-flight shared scan: one tenant's
// queries of one class. Distinct tenants scan distinct databases, so there
// is no shareable work across tenants even for the same query template —
// only a tenant's own same-class queries (its batch actions) merge.
type liveKey struct {
	ref   tenant.Ref
	class *queries.Class
}

// execWeight is an exec's processor-sharing weight: one share per merged
// logical query. A plain exec (members nil) weighs 1.
func execWeight(ex *exec) int {
	if n := len(ex.members); n > 0 {
		return n
	}
	return 1
}

// batchMember is one logical query merged into a shared batch.
type batchMember struct {
	ref    tenant.Ref
	submit sim.Time
	iso    sim.Time
	maxRes int // peak instance residency while in flight
	tag    uint64
	tagged bool
	done   func(Result)
}

// Instance is one simulated MPPDB.
type Instance struct {
	id    string
	nodes int
	eng   *sim.Engine
	state State
	in    *tenant.Interner

	// Per-tenant state, indexed by the group interner's dense refs. A ref is
	// deployed here iff deployed[ref]; slices may be shorter than the
	// interner when other instances interned tenants first, so reads bounds-
	// check.
	tenantGB []float64
	deployed []bool
	running  []int32

	// Processor-sharing executor state. execs is the live set (swap-remove
	// on completion: every consumer of the slice — advance, reschedule,
	// maxConc — is iteration-order independent).
	execs      []*exec
	freeExecs  []*exec
	nextExecID int64
	lastTouch  sim.Time
	// weightSum is the total scheduler weight of the live set. Plain execs
	// weigh 1; a shared batch weighs one share per live member, so merging
	// never shrinks the capacity share its members would have held unmerged.
	// With sharing off every weight is 1 and weightSum == len(execs).
	weightSum int

	// completion is the single outstanding predicted-completion event
	// (engine-owned, recycled); nextDone is the exec it targets and
	// completeCb the one persistent callback shared by every reschedule.
	completion *sim.Event
	nextDone   *exec
	completeCb func(sim.Time)

	// onDone receives completions of SubmitTagged queries with their tag.
	onDone func(Result, uint64)

	// Shared-work execution state (SetSharing). A tenant's same-class
	// queries merge into batches: live maps a (tenant, class) pair to its
	// in-flight batch, resident counts logical in-flight queries (all batch
	// members), which equals len(execs) only when sharing is off.
	// sharedBatches/sharedJoins are cumulative instance counters.
	sharing       bool
	resident      int
	live          map[liveKey]*exec
	sharedBatches uint64
	sharedJoins   uint64

	failedNodes int
	// slowFactor models a fail-slow (gray) fault: the whole instance runs at
	// this fraction of nominal speed on top of any node-loss degradation.
	// 1.0 means healthy; multiplication by exactly 1.0 is IEEE-exact, so an
	// instance that never sees SetSlowdown is bit-identical to one predating
	// the field.
	slowFactor float64

	// Telemetry (optional): service/sojourn histograms and the live
	// concurrency level, labelled by instance.
	tel        *telemetry.Hub
	mService   *telemetry.Histogram
	mSojourn   *telemetry.Histogram
	mRunning   *telemetry.Gauge
	mCompleted *telemetry.Counter
	// Registered only under sharing so a sharing-off /metrics surface is
	// byte-identical to one predating the mode.
	mSharedBatches *telemetry.Counter
	mSharedJoins   *telemetry.Counter
}

// New creates an instance that is immediately Ready (provisioning timing is
// the Deployment Master's concern; tests and the router use ready
// instances directly). The instance owns a private interner; production
// groups share one across router, instances, and admission via NewInterned.
func New(eng *sim.Engine, id string, nodes int) *Instance {
	return NewInterned(eng, id, nodes, tenant.NewInterner())
}

// NewInterned creates a Ready instance whose per-tenant state is keyed by
// the given shared interner, so refs resolved by the group's router are
// valid on this instance directly.
func NewInterned(eng *sim.Engine, id string, nodes int, in *tenant.Interner) *Instance {
	if nodes < 1 {
		panic(fmt.Sprintf("mppdb: instance %q with %d nodes", id, nodes))
	}
	m := &Instance{
		id:         id,
		nodes:      nodes,
		eng:        eng,
		state:      Ready,
		in:         in,
		slowFactor: 1,
	}
	m.completeCb = func(now sim.Time) {
		// The handle is dead the instant the event fires: drop it before
		// anything can reschedule (the engine recycles it after we return).
		m.completion = nil
		m.complete(m.nextDone)
	}
	return m
}

// Interner returns the interner keying this instance's per-tenant state.
func (m *Instance) Interner() *tenant.Interner { return m.in }

// SetTelemetry attaches a telemetry hub: per-query service-demand and
// sojourn-time histograms plus the instance's concurrency level. A nil hub
// disables instrumentation.
func (m *Instance) SetTelemetry(h *telemetry.Hub) {
	m.tel = h
	if h == nil {
		return
	}
	m.mService = h.Registry.Histogram("thrifty_mppdb_service_seconds", nil, "mppdb", m.id)
	m.mSojourn = h.Registry.Histogram("thrifty_mppdb_sojourn_seconds", nil, "mppdb", m.id)
	m.mRunning = h.Registry.Gauge("thrifty_mppdb_running", "mppdb", m.id)
	m.mCompleted = h.Registry.Counter("thrifty_mppdb_completed_total", "mppdb", m.id)
	if m.sharing {
		m.mSharedBatches = h.Registry.Counter("thrifty_mppdb_shared_batches_total", "mppdb", m.id)
		m.mSharedJoins = h.Registry.Counter("thrifty_mppdb_shared_joins_total", "mppdb", m.id)
	}
}

// SetCompletionHandler installs the pooled completion path: queries started
// with SubmitTagged report here with their submit-time tag instead of
// through a per-call closure.
func (m *Instance) SetCompletionHandler(fn func(Result, uint64)) { m.onDone = fn }

// SetSharing switches shared-work execution on or off. When on, a tenant's
// concurrent same-class queries execute as one shared scan: the first query
// starts a batch with service demand maxIso + σ·(ΣIso − maxIso)
// (queries.SharedDemand). A query of the same (tenant, class) arriving
// while the batch runs attaches to it in flight: the batch's remaining
// demand grows by exactly the joiner's marginal shared cost (σ·iso — the
// increase of the SharedDemand aggregate), and every member finishes when
// the batch does. The already-scanned prefix a late joiner missed is
// absorbed into the σ share — the circular-scan discipline of shared-scan
// systems, where a joiner picks up the scan mid-cycle and the wrap-around
// rides the same arm.
//
// A batch is scheduled under WEIGHTED processor sharing with one share per
// live member — k merged queries hold exactly the k shares they would have
// held unmerged. Keeping the share while shrinking the demand (from ΣIso to
// the σ aggregate) is what makes sharing safe: the batch finishes strictly
// earlier than its members would have under plain processor sharing, and
// its early exit only frees capacity for bystanders. Folding k queries into
// ONE share instead would starve exactly the queries being merged — the
// share would drop k-fold while the demand only drops to (1+(k−1)σ)/k.
//
// Attachment is deterministic FCFS; joiners never queue, so a live window
// is one shared scan, not a convoy. Sharing never crosses tenants: distinct
// tenants scan distinct databases, so the same query template on two
// tenants has no common work — their queries stay independent
// processor-sharing participants exactly as with sharing off. Queries of
// distinct classes never interact either, and sharing-off behaviour is
// byte-identical to an instance predating this mode (all weights are 1).
// The mode can only be toggled while the instance is idle.
func (m *Instance) SetSharing(on bool) error {
	if m.resident > 0 || len(m.execs) > 0 {
		return fmt.Errorf("mppdb %s: cannot toggle sharing with queries in flight", m.id)
	}
	m.sharing = on
	if on && m.live == nil {
		m.live = make(map[liveKey]*exec)
	}
	return nil
}

// Sharing reports whether shared-work execution is enabled.
func (m *Instance) Sharing() bool { return m.sharing }

// SharedStats returns the cumulative shared-execution counters: batches is
// the number of batches that became multi-member (counted once, when the
// second member attaches), joins the number of queries that attached to an
// in-flight shared scan instead of entering processor sharing on their own.
func (m *Instance) SharedStats() (batches, joins uint64) {
	return m.sharedBatches, m.sharedJoins
}

// ID returns the instance identifier.
func (m *Instance) ID() string { return m.id }

// Nodes returns the instance's degree of parallelism.
func (m *Instance) Nodes() int { return m.nodes }

// State returns the current lifecycle state.
func (m *Instance) State() State { return m.state }

// SetState transitions the lifecycle state; the Deployment Master drives
// Provisioning → Loading → Ready.
func (m *Instance) SetState(s State) { m.state = s }

// ensure grows the per-ref slices to cover ref.
func (m *Instance) ensure(ref tenant.Ref) {
	for int(ref) >= len(m.tenantGB) {
		m.tenantGB = append(m.tenantGB, 0)
		m.deployed = append(m.deployed, false)
		m.running = append(m.running, 0)
	}
}

// DeployTenantRef registers a tenant schema of dataGB by interned ref.
func (m *Instance) DeployTenantRef(ref tenant.Ref, dataGB float64) {
	if ref < 0 {
		return
	}
	m.ensure(ref)
	m.tenantGB[ref] = dataGB
	m.deployed[ref] = true
}

// DeployTenant registers a tenant schema of dataGB on this instance. The
// bulk-load *timing* is applied by the caller (Deployment Master / elastic
// scaler) via cluster.LoadTime; Deploy itself is bookkeeping.
func (m *Instance) DeployTenant(tenantID string, dataGB float64) {
	m.DeployTenantRef(m.in.Intern(tenantID), dataGB)
}

// RemoveTenantRef drops a tenant schema by ref.
func (m *Instance) RemoveTenantRef(ref tenant.Ref) {
	if ref < 0 || int(ref) >= len(m.deployed) {
		return
	}
	m.deployed[ref] = false
	m.tenantGB[ref] = 0
}

// RemoveTenant drops a tenant schema.
func (m *Instance) RemoveTenant(tenantID string) {
	if ref, ok := m.in.Lookup(tenantID); ok {
		m.RemoveTenantRef(ref)
	}
}

// HasTenantRef reports whether the ref's data is deployed here.
func (m *Instance) HasTenantRef(ref tenant.Ref) bool {
	return ref >= 0 && int(ref) < len(m.deployed) && m.deployed[ref]
}

// HasTenant reports whether the tenant's data is deployed here.
func (m *Instance) HasTenant(tenantID string) bool {
	ref, ok := m.in.Lookup(tenantID)
	return ok && m.HasTenantRef(ref)
}

// Tenants returns the deployed tenant IDs, sorted.
func (m *Instance) Tenants() []string {
	var out []string
	for ref, dep := range m.deployed {
		if dep {
			out = append(out, m.in.ID(tenant.Ref(ref)))
		}
	}
	sort.Strings(out)
	return out
}

// TenantDataGB returns the total deployed data volume in GB.
func (m *Instance) TenantDataGB() float64 {
	var gb float64
	for ref, dep := range m.deployed {
		if dep {
			gb += m.tenantGB[ref]
		}
	}
	return gb
}

// Snapshot is a point-in-time copy of an instance's externally visible
// state. Runtime shards hand snapshots across clock-domain boundaries so
// read-only consumers (the service's group endpoints) never touch a live
// instance without holding its domain.
type Snapshot struct {
	ID          string
	Nodes       int
	State       State
	Running     int
	FailedNodes int
}

// Snapshot captures the instance's current state. The caller must hold the
// instance's clock domain (or otherwise be the engine's single driver).
func (m *Instance) Snapshot() Snapshot {
	return Snapshot{
		ID:          m.id,
		Nodes:       m.nodes,
		State:       m.state,
		Running:     m.Running(),
		FailedNodes: m.failedNodes,
	}
}

// Busy reports whether any query is currently executing (§4.3's definition:
// an MPPDB is free when it is not serving any queries). Queries queued for a
// class's next shared batch count as executing.
func (m *Instance) Busy() bool {
	if m.sharing {
		return m.resident > 0
	}
	return len(m.execs) > 0
}

// Running returns the number of in-flight logical queries: every submitted,
// unfinished query counts once, whether it runs alone, inside a shared
// batch, or queued for its class's next batch.
func (m *Instance) Running() int {
	if m.sharing {
		return m.resident
	}
	return len(m.execs)
}

// EffectiveRunning returns the number of processor-sharing participants:
// a shared batch counts once however many queries it merges. Equal to
// Running when sharing is off; sharing-aware capacity decisions (admission
// brownout) read this instead of the raw residency.
func (m *Instance) EffectiveRunning() int { return len(m.execs) }

// RefRunning returns the number of in-flight queries of one tenant ref.
func (m *Instance) RefRunning(ref tenant.Ref) int {
	if ref < 0 || int(ref) >= len(m.running) {
		return 0
	}
	return int(m.running[ref])
}

// TenantRunning returns the number of in-flight queries of one tenant.
func (m *Instance) TenantRunning(tenantID string) int {
	ref, ok := m.in.Lookup(tenantID)
	if !ok {
		return 0
	}
	return m.RefRunning(ref)
}

// FailNode degrades the instance by one node (the MPPDB "can still stay
// online even with some node failure", §4.4). Execution slows
// proportionally until RepairNode is called.
func (m *Instance) FailNode() error {
	if m.failedNodes >= m.nodes-1 {
		return fmt.Errorf("mppdb %s: cannot fail %d of %d nodes", m.id, m.failedNodes+1, m.nodes)
	}
	m.advance()
	m.failedNodes++
	m.reschedule()
	return nil
}

// RepairNode restores one failed node.
func (m *Instance) RepairNode() error {
	if m.failedNodes == 0 {
		return fmt.Errorf("mppdb %s: no failed node to repair", m.id)
	}
	m.advance()
	m.failedNodes--
	m.reschedule()
	return nil
}

// FailedNodes returns the number of currently failed nodes.
func (m *Instance) FailedNodes() int { return m.failedNodes }

// speed returns the instance's aggregate progress rate: 1.0 healthy, scaled
// down by failed nodes and any fail-slow factor. The node-loss ratio is
// computed first so runs that never set a slowdown multiply by exactly 1.0.
func (m *Instance) speed() float64 {
	return float64(m.nodes-m.failedNodes) / float64(m.nodes) * m.slowFactor
}

// SpeedFactor returns the instance's current progress rate: 1.0 healthy,
// (nodes-failed)/nodes degraded, further scaled by any fail-slow factor.
// Query latency scales by exactly its inverse while the instance is
// otherwise idle (§4.4: the MPPDB "can still stay online even with some node
// failure", just slower).
func (m *Instance) SpeedFactor() float64 { return m.speed() }

// SetSlowdown imposes (or clears, with factor 1) a fractional fail-slow
// fault: the instance progresses at factor× its node-loss-adjusted speed
// until the next call. Unlike FailNode this models gray failure — the
// instance still heartbeats and accepts queries, it is just slow.
func (m *Instance) SetSlowdown(factor float64) error {
	if factor <= 0 || factor > 1 {
		return fmt.Errorf("mppdb %s: slowdown factor %v outside (0, 1]", m.id, factor)
	}
	m.advance()
	m.slowFactor = factor
	m.reschedule()
	return nil
}

// Slowdown returns the current fail-slow factor (1.0 when healthy).
func (m *Instance) Slowdown() float64 { return m.slowFactor }

// IsolatedLatencyRef returns the latency the query class would see on this
// instance, alone and healthy, for the given tenant ref's data.
func (m *Instance) IsolatedLatencyRef(ref tenant.Ref, class *queries.Class) (sim.Time, error) {
	if !m.HasTenantRef(ref) {
		return 0, fmt.Errorf("mppdb %s: tenant %q not deployed", m.id, m.in.ID(ref))
	}
	return sim.Duration(class.Latency(m.tenantGB[ref], m.nodes)), nil
}

// IsolatedLatency returns the latency the query class would see on this
// instance, alone and healthy, for the given tenant's data.
func (m *Instance) IsolatedLatency(tenantID string, class *queries.Class) (sim.Time, error) {
	ref, ok := m.in.Lookup(tenantID)
	if !ok {
		return 0, fmt.Errorf("mppdb %s: tenant %q not deployed", m.id, tenantID)
	}
	return m.IsolatedLatencyRef(ref, class)
}

// Submit starts executing a query for a deployed tenant. done (optional) is
// invoked when the query completes. Submit returns the isolated latency so
// callers can set expectations without re-deriving it.
func (m *Instance) Submit(tenantID string, class *queries.Class, done func(Result)) (sim.Time, error) {
	ref, ok := m.in.Lookup(tenantID)
	if !ok {
		return 0, fmt.Errorf("mppdb %s: tenant %q not deployed", m.id, tenantID)
	}
	return m.submit(ref, class, done, 0, false, false)
}

// SubmitTagged is the pooled hot path: the query is identified by its
// interned ref, and completion reports through the instance-level handler
// (SetCompletionHandler) with tag — no per-call closure is allocated.
func (m *Instance) SubmitTagged(ref tenant.Ref, class *queries.Class, tag uint64) (sim.Time, error) {
	return m.submit(ref, class, nil, tag, true, false)
}

// SubmitHedge starts a hedged duplicate of a query already running on a
// sibling instance. It behaves like SubmitTagged except that the
// service-demand histogram is not observed — the logical query was already
// counted at its primary submit, and hedges must never double-count.
func (m *Instance) SubmitHedge(ref tenant.Ref, class *queries.Class, tag uint64) (sim.Time, error) {
	return m.submit(ref, class, nil, tag, true, true)
}

// CancelTagged withdraws an in-flight tagged query without completing it:
// no completion handler fires and no sojourn/completed telemetry is
// observed (the hedge winner accounts for the logical query). It reports
// whether a matching query was found.
func (m *Instance) CancelTagged(tag uint64) bool {
	if m.sharing {
		return m.cancelShared(tag)
	}
	m.advance()
	var ex *exec
	for _, cand := range m.execs {
		if cand.tagged && cand.tag == tag {
			ex = cand
			break
		}
	}
	if ex == nil {
		return false
	}
	i := ex.idx
	last := len(m.execs) - 1
	m.execs[i] = m.execs[last]
	m.execs[i].idx = i
	m.execs[last] = nil
	m.execs = m.execs[:last]
	ex.idx = -1
	m.weightSum--
	m.running[ex.ref]--
	if m.tel != nil {
		m.mRunning.Set(float64(len(m.execs)))
	}
	m.reschedule()
	m.releaseExec(ex)
	return true
}

// cancelShared withdraws one tagged logical query under shared-work
// execution. A member of a live multi-member batch is detached without
// refunding the batch's service demand — the shared scan is already paying
// that member's σ share and re-deriving a smaller demand mid-flight would
// advantage exactly the executions a hedge raced, so the cost stays sunk. A
// batch's sole member cancels the whole batch.
func (m *Instance) cancelShared(tag uint64) bool {
	var ex *exec
	mi := -1
	for _, cand := range m.execs {
		for i := range cand.members {
			if cand.members[i].tagged && cand.members[i].tag == tag {
				ex, mi = cand, i
				break
			}
		}
		if ex != nil {
			break
		}
	}
	if ex == nil {
		return false
	}
	m.resident--
	m.running[ex.members[mi].ref]--
	if len(ex.members) > 1 {
		// Settle progress at the old rates first: the batch loses the
		// detached member's scheduler share along with its claim on the
		// results, even though its demand stays sunk.
		m.advance()
		ex.members = append(ex.members[:mi], ex.members[mi+1:]...)
		m.weightSum--
		if m.tel != nil {
			m.mRunning.Set(float64(m.resident))
		}
		m.reschedule()
		return true
	}
	// Sole member: withdraw the whole batch from processor sharing.
	m.advance()
	key := liveKey{ref: ex.ref, class: ex.class}
	ex.members = nil
	i := ex.idx
	last := len(m.execs) - 1
	m.execs[i] = m.execs[last]
	m.execs[i].idx = i
	m.execs[last] = nil
	m.execs = m.execs[:last]
	ex.idx = -1
	m.weightSum--
	delete(m.live, key)
	if m.tel != nil {
		m.mRunning.Set(float64(m.resident))
	}
	m.reschedule()
	m.releaseExec(ex)
	return true
}

func (m *Instance) submit(ref tenant.Ref, class *queries.Class, done func(Result), tag uint64, tagged, hedge bool) (sim.Time, error) {
	if m.state != Ready {
		return 0, fmt.Errorf("mppdb %s: not ready (%v)", m.id, m.state)
	}
	iso, err := m.IsolatedLatencyRef(ref, class)
	if err != nil {
		return 0, err
	}
	now := m.eng.Now()
	if m.sharing {
		return m.submitShared(ref, class, iso, done, tag, tagged, hedge, now)
	}
	m.nextExecID++
	ex := m.acquireExec()
	ex.id = m.nextExecID
	ex.ref = ref
	ex.class = class
	ex.submit = now
	ex.isolated = iso
	ex.remaining = iso.Seconds()
	ex.tag = tag
	ex.tagged = tagged
	ex.done = done
	// One fused pass over the in-flight set does the work of advance(), the
	// max-concurrency update, and reschedule()'s min-selection — same
	// arithmetic and same unique (remaining, id) minimum, one O(n) scan
	// instead of three. The submit path dominates the service hot loop, and
	// these scans dominate the submit path.
	// dec is elapsed*(speed/k), associated exactly as advance() computes it
	// so the fused path is bit-identical to the unfused one.
	// The plain path runs only with sharing off, where every weight is 1 and
	// weightSum == len(execs): the unweighted scan below is exact.
	dec := 0.0
	if now > m.lastTouch && len(m.execs) > 0 {
		dec = (now - m.lastTouch).Seconds() * (m.speed() / float64(len(m.execs)))
	}
	m.lastTouch = now
	conc := len(m.execs) + 1
	ex.maxConc = conc
	next := ex
	for _, other := range m.execs {
		if dec > 0 {
			other.remaining -= dec
			if other.remaining < 0 {
				other.remaining = 0
			}
		}
		if conc > other.maxConc {
			other.maxConc = conc
		}
		if other.remaining < next.remaining ||
			(other.remaining == next.remaining && other.id < next.id) {
			next = other
		}
	}
	ex.idx = len(m.execs)
	m.execs = append(m.execs, ex)
	m.weightSum++
	m.running[ref]++
	if m.tel != nil {
		// Hedged duplicates skip the service-demand histogram: the logical
		// query was already observed at its primary submit.
		if !hedge {
			m.mService.Observe(iso.Seconds())
		}
		m.mRunning.Set(float64(len(m.execs)))
	}
	if m.completion != nil {
		m.eng.CancelOwned(m.completion)
		m.completion = nil
	}
	eta := next.remaining * float64(len(m.execs)) / m.speed()
	m.nextDone = next
	m.completion = m.eng.ScheduleOwned(now+sim.Time(eta*float64(sim.Second)), m.completeCb)
	return iso, nil
}

// submitShared is the shared-work submit path: the query either starts a new
// batch for its class (entering processor sharing) or attaches to the
// class's in-flight batch, growing its remaining demand by exactly the
// joiner's marginal shared cost.
func (m *Instance) submitShared(ref tenant.Ref, class *queries.Class, iso sim.Time, done func(Result), tag uint64, tagged, hedge bool, now sim.Time) (sim.Time, error) {
	m.resident++
	m.running[ref]++
	mem := batchMember{
		ref: ref, submit: now, iso: iso, maxRes: m.resident,
		tag: tag, tagged: tagged, done: done,
	}
	m.bumpResidency()
	if m.tel != nil {
		// Hedged duplicates skip the service-demand histogram (see
		// SubmitHedge); under sharing mRunning reports logical residency.
		if !hedge {
			m.mService.Observe(iso.Seconds())
		}
		m.mRunning.Set(float64(m.resident))
	}
	if ex, liveNow := m.live[liveKey{ref: ref, class: class}]; liveNow {
		m.attach(ex, mem, now)
		return iso, nil
	}
	m.startBatch(class, mem, now)
	return iso, nil
}

// attach merges a late joiner into its class's in-flight batch. The batch's
// progress is settled first (advance), then its remaining demand grows by
// the joiner's marginal shared cost — the increase of the SharedDemand
// aggregate maxIso + σ·(ΣIso − maxIso), i.e. σ·iso for a same-width joiner —
// and the batch gains one scheduler share. To the rest of the instance an
// attachment is therefore indistinguishable from the joiner entering
// processor sharing on its own (same weight added), while the batch's total
// demand grows by σ·iso instead of iso: every member, and every bystander,
// finishes no later than it would have unmerged. The joiner finishes when
// the batch does; the prefix of the scan it missed is absorbed in the σ
// share (circular-scan wrap-around).
func (m *Instance) attach(ex *exec, mem batchMember, now sim.Time) {
	m.advance()
	s := mem.iso.Seconds()
	old := ex.class.SharedDemand(ex.maxIso, ex.sumIso)
	ex.sumIso += s
	if s > ex.maxIso {
		ex.maxIso = s
	}
	grown := ex.class.SharedDemand(ex.maxIso, ex.sumIso)
	ex.remaining += grown - old
	ex.isolated = sim.Time(grown * float64(sim.Second))
	ex.members = append(ex.members, mem)
	m.weightSum++
	if len(ex.members) == 2 {
		m.sharedBatches++
		if m.mSharedBatches != nil {
			m.mSharedBatches.Inc()
		}
	}
	m.sharedJoins++
	if m.mSharedJoins != nil {
		m.mSharedJoins.Inc()
	}
	m.reschedule()
}

// bumpResidency raises every in-flight member's residency peak to the
// current resident count. Only called under sharing; the plain path keeps
// its fused submit scan.
func (m *Instance) bumpResidency() {
	r := m.resident
	for _, ex := range m.execs {
		for i := range ex.members {
			if r > ex.members[i].maxRes {
				ex.members[i].maxRes = r
			}
		}
	}
}

// startBatch enters a new shared batch into processor sharing for its first
// member (weight 1 — one share per member) and registers it as the class's
// live batch. The batch's service demand starts as the member's isolated
// latency and grows by marginal SharedDemand shares as joiners attach — the
// widest member's scan paid once, every further member only its
// non-shareable σ share; the exec's recorded isolated latency is the
// current demand, since it is what the batch would take on an otherwise
// idle instance.
func (m *Instance) startBatch(class *queries.Class, mem batchMember, now sim.Time) {
	iso := mem.iso.Seconds()
	m.nextExecID++
	ex := m.acquireExec()
	ex.id = m.nextExecID
	ex.ref = mem.ref
	ex.class = class
	ex.submit = now
	ex.isolated = mem.iso
	ex.remaining = iso
	ex.tag = 0
	ex.tagged = false
	ex.done = nil
	ex.members = append(ex.members[:0], mem)
	ex.maxIso = iso
	ex.sumIso = iso
	// Weighted variant of the plain submit's fused scan: co-resident batches
	// may weigh more than 1, so each exec's decrement and the min-selection
	// are scaled by its weight.
	dec := 0.0
	if now > m.lastTouch && len(m.execs) > 0 {
		dec = (now - m.lastTouch).Seconds() * (m.speed() / float64(m.weightSum))
	}
	m.lastTouch = now
	conc := len(m.execs) + 1
	ex.maxConc = conc
	next := ex
	nw := 1.0
	for _, other := range m.execs {
		ow := float64(execWeight(other))
		if dec > 0 {
			other.remaining -= dec * ow
			if other.remaining < 0 {
				other.remaining = 0
			}
		}
		if conc > other.maxConc {
			other.maxConc = conc
		}
		if other.remaining*nw < next.remaining*ow ||
			(other.remaining*nw == next.remaining*ow && other.id < next.id) {
			next, nw = other, ow
		}
	}
	ex.idx = len(m.execs)
	m.execs = append(m.execs, ex)
	m.weightSum++
	if m.completion != nil {
		m.eng.CancelOwned(m.completion)
		m.completion = nil
	}
	eta := next.remaining * float64(m.weightSum) / (m.speed() * nw)
	m.nextDone = next
	m.completion = m.eng.ScheduleOwned(now+sim.Time(eta*float64(sim.Second)), m.completeCb)
	m.live[liveKey{ref: mem.ref, class: class}] = ex
}

// acquireExec pops a recycled exec or allocates one.
func (m *Instance) acquireExec() *exec {
	n := len(m.freeExecs)
	if n == 0 {
		return &exec{}
	}
	ex := m.freeExecs[n-1]
	m.freeExecs[n-1] = nil
	m.freeExecs = m.freeExecs[:n-1]
	return ex
}

// releaseExec returns a finished exec to the freelist.
func (m *Instance) releaseExec(ex *exec) {
	ex.class = nil
	ex.done = nil
	ex.members = nil
	m.freeExecs = append(m.freeExecs, ex)
}

// advance applies elapsed virtual time to all in-flight queries under
// weighted processor sharing: an exec of weight w progresses at
// speed()·w/W where W is the live set's total weight. With sharing off
// every weight is 1, W == k, and the arithmetic (·1.0 is IEEE-exact) is
// bit-identical to the unweighted rate speed()/k.
func (m *Instance) advance() {
	now := m.eng.Now()
	if now <= m.lastTouch {
		m.lastTouch = now
		return
	}
	elapsed := (now - m.lastTouch).Seconds()
	m.lastTouch = now
	if len(m.execs) == 0 {
		return
	}
	rate := m.speed() / float64(m.weightSum)
	for _, ex := range m.execs {
		ex.remaining -= elapsed * rate * float64(execWeight(ex))
		if ex.remaining < 0 {
			ex.remaining = 0
		}
	}
}

// reschedule (re)computes the next completion event: the exec minimising
// remaining/weight (compared cross-multiplied, exact for weight 1, id
// tie-break). The selection is iteration-order independent, so the
// swap-remove slice cannot perturb a deterministic run.
func (m *Instance) reschedule() {
	if m.completion != nil {
		m.eng.CancelOwned(m.completion)
		m.completion = nil
	}
	if len(m.execs) == 0 {
		m.nextDone = nil
		return
	}
	next := m.execs[0]
	nw := float64(execWeight(next))
	for _, ex := range m.execs[1:] {
		w := float64(execWeight(ex))
		if ex.remaining*nw < next.remaining*w ||
			(ex.remaining*nw == next.remaining*w && ex.id < next.id) {
			next, nw = ex, w
		}
	}
	eta := next.remaining * float64(m.weightSum) / (m.speed() * nw)
	at := m.eng.Now() + sim.Time(eta*float64(sim.Second))
	m.nextDone = next
	m.completion = m.eng.ScheduleOwned(at, m.completeCb)
}

// complete finishes the targeted query and reschedules.
func (m *Instance) complete(ex *exec) {
	if ex == nil || ex.idx < 0 || ex.idx >= len(m.execs) || m.execs[ex.idx] != ex {
		m.advance()
		m.reschedule()
		return
	}
	// Fused advance + next-completion selection, mirroring submit: one scan
	// decrements every in-flight query by its weighted share and picks the
	// min-(remaining/weight, id) among the survivors.
	now := m.eng.Now()
	dec := 0.0
	if now > m.lastTouch {
		dec = (now - m.lastTouch).Seconds() * (m.speed() / float64(m.weightSum))
	}
	m.lastTouch = now
	var next *exec
	nw := 1.0
	for _, other := range m.execs {
		if dec > 0 {
			other.remaining -= dec * float64(execWeight(other))
			if other.remaining < 0 {
				other.remaining = 0
			}
		}
		if other == ex {
			continue
		}
		ow := float64(execWeight(other))
		if next == nil || other.remaining*nw < next.remaining*ow ||
			(other.remaining*nw == next.remaining*ow && other.id < next.id) {
			next, nw = other, ow
		}
	}
	// Guard against float drift: the scheduled completion is authoritative.
	ex.remaining = 0
	i := ex.idx
	last := len(m.execs) - 1
	m.execs[i] = m.execs[last]
	m.execs[i].idx = i
	m.execs[last] = nil
	m.execs = m.execs[:last]
	ex.idx = -1
	m.weightSum -= execWeight(ex)
	if ex.members != nil {
		for j := range ex.members {
			m.running[ex.members[j].ref]--
		}
		m.resident -= len(ex.members)
		if m.tel != nil {
			for j := range ex.members {
				m.mSojourn.Observe((now - ex.members[j].submit).Seconds())
			}
			m.mRunning.Set(float64(m.resident))
			m.mCompleted.Add(int64(len(ex.members)))
		}
	} else {
		m.running[ex.ref]--
		if m.tel != nil {
			m.mSojourn.Observe((now - ex.submit).Seconds())
			m.mRunning.Set(float64(len(m.execs)))
			m.mCompleted.Inc()
		}
	}
	if m.completion != nil {
		m.eng.CancelOwned(m.completion)
		m.completion = nil
	}
	if next == nil {
		m.nextDone = nil
	} else {
		eta := next.remaining * float64(m.weightSum) / (m.speed() * nw)
		m.nextDone = next
		m.completion = m.eng.ScheduleOwned(now+sim.Time(eta*float64(sim.Second)), m.completeCb)
	}
	if ex.members != nil {
		m.finishBatch(ex, now)
	} else if ex.done != nil {
		ex.done(Result{
			Tenant:               m.in.ID(ex.ref),
			Class:                ex.class,
			Submit:               ex.submit,
			Finish:               m.eng.Now(),
			Isolated:             ex.isolated,
			MaxConcurrency:       ex.maxConc,
			EffectiveConcurrency: ex.maxConc,
		})
	} else if ex.tagged && m.onDone != nil {
		m.onDone(Result{
			Tenant:               m.in.ID(ex.ref),
			Class:                ex.class,
			Submit:               ex.submit,
			Finish:               m.eng.Now(),
			Isolated:             ex.isolated,
			MaxConcurrency:       ex.maxConc,
			EffectiveConcurrency: ex.maxConc,
		}, ex.tag)
	}
	m.releaseExec(ex)
}

// finishBatch retires a completed shared batch: the class's live slot is
// cleared *before* member completions fire, so a completion callback that
// immediately resubmits the class starts a fresh batch rather than attaching
// to a finished scan. Every member reports its own submit time and isolated
// latency; MaxConcurrency is the member's residency peak and
// EffectiveConcurrency the batch's processor-sharing peak.
func (m *Instance) finishBatch(ex *exec, now sim.Time) {
	class := ex.class
	members := ex.members
	ex.members = nil
	delete(m.live, liveKey{ref: ex.ref, class: class})
	for i := range members {
		mem := &members[i]
		res := Result{
			Tenant:               m.in.ID(mem.ref),
			Class:                class,
			Submit:               mem.submit,
			Finish:               now,
			Isolated:             mem.iso,
			MaxConcurrency:       mem.maxRes,
			EffectiveConcurrency: ex.maxConc,
		}
		if mem.done != nil {
			mem.done(res)
		} else if mem.tagged && m.onDone != nil {
			m.onDone(res, mem.tag)
		}
	}
}
