// Package mppdb simulates a massively parallel processing relational
// database instance — the execution substrate the paper runs its tenants on.
//
// The model captures the two behaviours the paper's consolidation design is
// built around (Fig 1.1):
//
//   - Isolated latency follows the query class' scale-out profile (package
//     queries): near-linear for scan-dominated queries, plateauing for
//     shuffle/coordination-heavy ones.
//   - Concurrent analytical queries on the same instance contend for I/O.
//     We model the instance as a processor-sharing server: a query's service
//     demand equals its isolated latency on this instance, and k concurrent
//     queries each progress at rate 1/k. Two concurrent Q1 instances thus
//     take ≈2× their isolated latency (the paper's 2T-CON line), while
//     sequential submissions are unaffected (xT-SEQ).
//
// Instances also model tenant deployment (bulk loading, package cluster's
// timing model), degraded operation under node failure, and report per-query
// results with slowdown relative to both the instance-isolated latency and
// the tenant's SLA target.
//
// Per-tenant state (deployed data, running counts) is keyed by interned
// tenant refs (package tenant): flat slices indexed by the group-local dense
// Ref replace the string-keyed maps that used to dominate the submit
// profile. The string API remains as a thin shim over the ref path.
package mppdb

import (
	"fmt"
	"sort"

	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tenant"
)

// State is the lifecycle state of an MPPDB instance.
type State int

const (
	// Provisioning: machine nodes are starting and the MPPDB is being
	// initialized.
	Provisioning State = iota
	// Loading: tenant data is being bulk loaded.
	Loading
	// Ready: the instance serves queries.
	Ready
	// Stopped: the instance was shut down.
	Stopped
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Provisioning:
		return "provisioning"
	case Loading:
		return "loading"
	case Ready:
		return "ready"
	case Stopped:
		return "stopped"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Result describes one completed query execution.
type Result struct {
	Tenant string
	Class  *queries.Class
	Submit sim.Time
	Finish sim.Time
	// Isolated is what the query would have taken on this instance with no
	// concurrent queries.
	Isolated sim.Time
	// MaxConcurrency is the largest number of queries that shared the
	// instance at any point during this execution (including this one).
	MaxConcurrency int
}

// Latency returns the observed wall-clock latency.
func (r Result) Latency() sim.Time { return r.Finish - r.Submit }

// Slowdown returns observed latency / isolated latency on this instance;
// 1.0 means the query ran as if alone.
func (r Result) Slowdown() float64 {
	if r.Isolated <= 0 {
		return 1
	}
	return float64(r.Latency()) / float64(r.Isolated)
}

// exec is one in-flight query. Execs are recycled through a per-instance
// freelist; idx tracks the slot in the live slice so removal is O(1).
type exec struct {
	id        int64
	ref       tenant.Ref
	class     *queries.Class
	submit    sim.Time
	isolated  sim.Time
	remaining float64 // seconds of dedicated-instance work left
	maxConc   int
	idx       int // position in Instance.execs; -1 once finished
	// tag correlates the pooled completion path (SubmitTagged /
	// SetCompletionHandler); done is the legacy per-call closure and is nil
	// on the tagged path.
	tag    uint64
	tagged bool
	done   func(Result)
}

// Instance is one simulated MPPDB.
type Instance struct {
	id    string
	nodes int
	eng   *sim.Engine
	state State
	in    *tenant.Interner

	// Per-tenant state, indexed by the group interner's dense refs. A ref is
	// deployed here iff deployed[ref]; slices may be shorter than the
	// interner when other instances interned tenants first, so reads bounds-
	// check.
	tenantGB []float64
	deployed []bool
	running  []int32

	// Processor-sharing executor state. execs is the live set (swap-remove
	// on completion: every consumer of the slice — advance, reschedule,
	// maxConc — is iteration-order independent).
	execs      []*exec
	freeExecs  []*exec
	nextExecID int64
	lastTouch  sim.Time

	// completion is the single outstanding predicted-completion event
	// (engine-owned, recycled); nextDone is the exec it targets and
	// completeCb the one persistent callback shared by every reschedule.
	completion *sim.Event
	nextDone   *exec
	completeCb func(sim.Time)

	// onDone receives completions of SubmitTagged queries with their tag.
	onDone func(Result, uint64)

	failedNodes int
	// slowFactor models a fail-slow (gray) fault: the whole instance runs at
	// this fraction of nominal speed on top of any node-loss degradation.
	// 1.0 means healthy; multiplication by exactly 1.0 is IEEE-exact, so an
	// instance that never sees SetSlowdown is bit-identical to one predating
	// the field.
	slowFactor float64

	// Telemetry (optional): service/sojourn histograms and the live
	// concurrency level, labelled by instance.
	tel        *telemetry.Hub
	mService   *telemetry.Histogram
	mSojourn   *telemetry.Histogram
	mRunning   *telemetry.Gauge
	mCompleted *telemetry.Counter
}

// New creates an instance that is immediately Ready (provisioning timing is
// the Deployment Master's concern; tests and the router use ready
// instances directly). The instance owns a private interner; production
// groups share one across router, instances, and admission via NewInterned.
func New(eng *sim.Engine, id string, nodes int) *Instance {
	return NewInterned(eng, id, nodes, tenant.NewInterner())
}

// NewInterned creates a Ready instance whose per-tenant state is keyed by
// the given shared interner, so refs resolved by the group's router are
// valid on this instance directly.
func NewInterned(eng *sim.Engine, id string, nodes int, in *tenant.Interner) *Instance {
	if nodes < 1 {
		panic(fmt.Sprintf("mppdb: instance %q with %d nodes", id, nodes))
	}
	m := &Instance{
		id:         id,
		nodes:      nodes,
		eng:        eng,
		state:      Ready,
		in:         in,
		slowFactor: 1,
	}
	m.completeCb = func(now sim.Time) {
		// The handle is dead the instant the event fires: drop it before
		// anything can reschedule (the engine recycles it after we return).
		m.completion = nil
		m.complete(m.nextDone)
	}
	return m
}

// Interner returns the interner keying this instance's per-tenant state.
func (m *Instance) Interner() *tenant.Interner { return m.in }

// SetTelemetry attaches a telemetry hub: per-query service-demand and
// sojourn-time histograms plus the instance's concurrency level. A nil hub
// disables instrumentation.
func (m *Instance) SetTelemetry(h *telemetry.Hub) {
	m.tel = h
	if h == nil {
		return
	}
	m.mService = h.Registry.Histogram("thrifty_mppdb_service_seconds", nil, "mppdb", m.id)
	m.mSojourn = h.Registry.Histogram("thrifty_mppdb_sojourn_seconds", nil, "mppdb", m.id)
	m.mRunning = h.Registry.Gauge("thrifty_mppdb_running", "mppdb", m.id)
	m.mCompleted = h.Registry.Counter("thrifty_mppdb_completed_total", "mppdb", m.id)
}

// SetCompletionHandler installs the pooled completion path: queries started
// with SubmitTagged report here with their submit-time tag instead of
// through a per-call closure.
func (m *Instance) SetCompletionHandler(fn func(Result, uint64)) { m.onDone = fn }

// ID returns the instance identifier.
func (m *Instance) ID() string { return m.id }

// Nodes returns the instance's degree of parallelism.
func (m *Instance) Nodes() int { return m.nodes }

// State returns the current lifecycle state.
func (m *Instance) State() State { return m.state }

// SetState transitions the lifecycle state; the Deployment Master drives
// Provisioning → Loading → Ready.
func (m *Instance) SetState(s State) { m.state = s }

// ensure grows the per-ref slices to cover ref.
func (m *Instance) ensure(ref tenant.Ref) {
	for int(ref) >= len(m.tenantGB) {
		m.tenantGB = append(m.tenantGB, 0)
		m.deployed = append(m.deployed, false)
		m.running = append(m.running, 0)
	}
}

// DeployTenantRef registers a tenant schema of dataGB by interned ref.
func (m *Instance) DeployTenantRef(ref tenant.Ref, dataGB float64) {
	if ref < 0 {
		return
	}
	m.ensure(ref)
	m.tenantGB[ref] = dataGB
	m.deployed[ref] = true
}

// DeployTenant registers a tenant schema of dataGB on this instance. The
// bulk-load *timing* is applied by the caller (Deployment Master / elastic
// scaler) via cluster.LoadTime; Deploy itself is bookkeeping.
func (m *Instance) DeployTenant(tenantID string, dataGB float64) {
	m.DeployTenantRef(m.in.Intern(tenantID), dataGB)
}

// RemoveTenantRef drops a tenant schema by ref.
func (m *Instance) RemoveTenantRef(ref tenant.Ref) {
	if ref < 0 || int(ref) >= len(m.deployed) {
		return
	}
	m.deployed[ref] = false
	m.tenantGB[ref] = 0
}

// RemoveTenant drops a tenant schema.
func (m *Instance) RemoveTenant(tenantID string) {
	if ref, ok := m.in.Lookup(tenantID); ok {
		m.RemoveTenantRef(ref)
	}
}

// HasTenantRef reports whether the ref's data is deployed here.
func (m *Instance) HasTenantRef(ref tenant.Ref) bool {
	return ref >= 0 && int(ref) < len(m.deployed) && m.deployed[ref]
}

// HasTenant reports whether the tenant's data is deployed here.
func (m *Instance) HasTenant(tenantID string) bool {
	ref, ok := m.in.Lookup(tenantID)
	return ok && m.HasTenantRef(ref)
}

// Tenants returns the deployed tenant IDs, sorted.
func (m *Instance) Tenants() []string {
	var out []string
	for ref, dep := range m.deployed {
		if dep {
			out = append(out, m.in.ID(tenant.Ref(ref)))
		}
	}
	sort.Strings(out)
	return out
}

// TenantDataGB returns the total deployed data volume in GB.
func (m *Instance) TenantDataGB() float64 {
	var gb float64
	for ref, dep := range m.deployed {
		if dep {
			gb += m.tenantGB[ref]
		}
	}
	return gb
}

// Snapshot is a point-in-time copy of an instance's externally visible
// state. Runtime shards hand snapshots across clock-domain boundaries so
// read-only consumers (the service's group endpoints) never touch a live
// instance without holding its domain.
type Snapshot struct {
	ID          string
	Nodes       int
	State       State
	Running     int
	FailedNodes int
}

// Snapshot captures the instance's current state. The caller must hold the
// instance's clock domain (or otherwise be the engine's single driver).
func (m *Instance) Snapshot() Snapshot {
	return Snapshot{
		ID:          m.id,
		Nodes:       m.nodes,
		State:       m.state,
		Running:     len(m.execs),
		FailedNodes: m.failedNodes,
	}
}

// Busy reports whether any query is currently executing (§4.3's definition:
// an MPPDB is free when it is not serving any queries).
func (m *Instance) Busy() bool { return len(m.execs) > 0 }

// Running returns the number of in-flight queries.
func (m *Instance) Running() int { return len(m.execs) }

// RefRunning returns the number of in-flight queries of one tenant ref.
func (m *Instance) RefRunning(ref tenant.Ref) int {
	if ref < 0 || int(ref) >= len(m.running) {
		return 0
	}
	return int(m.running[ref])
}

// TenantRunning returns the number of in-flight queries of one tenant.
func (m *Instance) TenantRunning(tenantID string) int {
	ref, ok := m.in.Lookup(tenantID)
	if !ok {
		return 0
	}
	return m.RefRunning(ref)
}

// FailNode degrades the instance by one node (the MPPDB "can still stay
// online even with some node failure", §4.4). Execution slows
// proportionally until RepairNode is called.
func (m *Instance) FailNode() error {
	if m.failedNodes >= m.nodes-1 {
		return fmt.Errorf("mppdb %s: cannot fail %d of %d nodes", m.id, m.failedNodes+1, m.nodes)
	}
	m.advance()
	m.failedNodes++
	m.reschedule()
	return nil
}

// RepairNode restores one failed node.
func (m *Instance) RepairNode() error {
	if m.failedNodes == 0 {
		return fmt.Errorf("mppdb %s: no failed node to repair", m.id)
	}
	m.advance()
	m.failedNodes--
	m.reschedule()
	return nil
}

// FailedNodes returns the number of currently failed nodes.
func (m *Instance) FailedNodes() int { return m.failedNodes }

// speed returns the instance's aggregate progress rate: 1.0 healthy, scaled
// down by failed nodes and any fail-slow factor. The node-loss ratio is
// computed first so runs that never set a slowdown multiply by exactly 1.0.
func (m *Instance) speed() float64 {
	return float64(m.nodes-m.failedNodes) / float64(m.nodes) * m.slowFactor
}

// SpeedFactor returns the instance's current progress rate: 1.0 healthy,
// (nodes-failed)/nodes degraded, further scaled by any fail-slow factor.
// Query latency scales by exactly its inverse while the instance is
// otherwise idle (§4.4: the MPPDB "can still stay online even with some node
// failure", just slower).
func (m *Instance) SpeedFactor() float64 { return m.speed() }

// SetSlowdown imposes (or clears, with factor 1) a fractional fail-slow
// fault: the instance progresses at factor× its node-loss-adjusted speed
// until the next call. Unlike FailNode this models gray failure — the
// instance still heartbeats and accepts queries, it is just slow.
func (m *Instance) SetSlowdown(factor float64) error {
	if factor <= 0 || factor > 1 {
		return fmt.Errorf("mppdb %s: slowdown factor %v outside (0, 1]", m.id, factor)
	}
	m.advance()
	m.slowFactor = factor
	m.reschedule()
	return nil
}

// Slowdown returns the current fail-slow factor (1.0 when healthy).
func (m *Instance) Slowdown() float64 { return m.slowFactor }

// IsolatedLatencyRef returns the latency the query class would see on this
// instance, alone and healthy, for the given tenant ref's data.
func (m *Instance) IsolatedLatencyRef(ref tenant.Ref, class *queries.Class) (sim.Time, error) {
	if !m.HasTenantRef(ref) {
		return 0, fmt.Errorf("mppdb %s: tenant %q not deployed", m.id, m.in.ID(ref))
	}
	return sim.Duration(class.Latency(m.tenantGB[ref], m.nodes)), nil
}

// IsolatedLatency returns the latency the query class would see on this
// instance, alone and healthy, for the given tenant's data.
func (m *Instance) IsolatedLatency(tenantID string, class *queries.Class) (sim.Time, error) {
	ref, ok := m.in.Lookup(tenantID)
	if !ok {
		return 0, fmt.Errorf("mppdb %s: tenant %q not deployed", m.id, tenantID)
	}
	return m.IsolatedLatencyRef(ref, class)
}

// Submit starts executing a query for a deployed tenant. done (optional) is
// invoked when the query completes. Submit returns the isolated latency so
// callers can set expectations without re-deriving it.
func (m *Instance) Submit(tenantID string, class *queries.Class, done func(Result)) (sim.Time, error) {
	ref, ok := m.in.Lookup(tenantID)
	if !ok {
		return 0, fmt.Errorf("mppdb %s: tenant %q not deployed", m.id, tenantID)
	}
	return m.submit(ref, class, done, 0, false, false)
}

// SubmitTagged is the pooled hot path: the query is identified by its
// interned ref, and completion reports through the instance-level handler
// (SetCompletionHandler) with tag — no per-call closure is allocated.
func (m *Instance) SubmitTagged(ref tenant.Ref, class *queries.Class, tag uint64) (sim.Time, error) {
	return m.submit(ref, class, nil, tag, true, false)
}

// SubmitHedge starts a hedged duplicate of a query already running on a
// sibling instance. It behaves like SubmitTagged except that the
// service-demand histogram is not observed — the logical query was already
// counted at its primary submit, and hedges must never double-count.
func (m *Instance) SubmitHedge(ref tenant.Ref, class *queries.Class, tag uint64) (sim.Time, error) {
	return m.submit(ref, class, nil, tag, true, true)
}

// CancelTagged withdraws an in-flight tagged query without completing it:
// no completion handler fires and no sojourn/completed telemetry is
// observed (the hedge winner accounts for the logical query). It reports
// whether a matching query was found.
func (m *Instance) CancelTagged(tag uint64) bool {
	m.advance()
	var ex *exec
	for _, cand := range m.execs {
		if cand.tagged && cand.tag == tag {
			ex = cand
			break
		}
	}
	if ex == nil {
		return false
	}
	i := ex.idx
	last := len(m.execs) - 1
	m.execs[i] = m.execs[last]
	m.execs[i].idx = i
	m.execs[last] = nil
	m.execs = m.execs[:last]
	ex.idx = -1
	m.running[ex.ref]--
	if m.tel != nil {
		m.mRunning.Set(float64(len(m.execs)))
	}
	m.reschedule()
	m.releaseExec(ex)
	return true
}

func (m *Instance) submit(ref tenant.Ref, class *queries.Class, done func(Result), tag uint64, tagged, hedge bool) (sim.Time, error) {
	if m.state != Ready {
		return 0, fmt.Errorf("mppdb %s: not ready (%v)", m.id, m.state)
	}
	iso, err := m.IsolatedLatencyRef(ref, class)
	if err != nil {
		return 0, err
	}
	now := m.eng.Now()
	m.nextExecID++
	ex := m.acquireExec()
	ex.id = m.nextExecID
	ex.ref = ref
	ex.class = class
	ex.submit = now
	ex.isolated = iso
	ex.remaining = iso.Seconds()
	ex.tag = tag
	ex.tagged = tagged
	ex.done = done
	// One fused pass over the in-flight set does the work of advance(), the
	// max-concurrency update, and reschedule()'s min-selection — same
	// arithmetic and same unique (remaining, id) minimum, one O(n) scan
	// instead of three. The submit path dominates the service hot loop, and
	// these scans dominate the submit path.
	// dec is elapsed*(speed/k), associated exactly as advance() computes it
	// so the fused path is bit-identical to the unfused one.
	dec := 0.0
	if now > m.lastTouch && len(m.execs) > 0 {
		dec = (now - m.lastTouch).Seconds() * (m.speed() / float64(len(m.execs)))
	}
	m.lastTouch = now
	conc := len(m.execs) + 1
	ex.maxConc = conc
	next := ex
	for _, other := range m.execs {
		if dec > 0 {
			other.remaining -= dec
			if other.remaining < 0 {
				other.remaining = 0
			}
		}
		if conc > other.maxConc {
			other.maxConc = conc
		}
		if other.remaining < next.remaining ||
			(other.remaining == next.remaining && other.id < next.id) {
			next = other
		}
	}
	ex.idx = len(m.execs)
	m.execs = append(m.execs, ex)
	m.running[ref]++
	if m.tel != nil {
		// Hedged duplicates skip the service-demand histogram: the logical
		// query was already observed at its primary submit.
		if !hedge {
			m.mService.Observe(iso.Seconds())
		}
		m.mRunning.Set(float64(len(m.execs)))
	}
	if m.completion != nil {
		m.eng.CancelOwned(m.completion)
		m.completion = nil
	}
	eta := next.remaining * float64(len(m.execs)) / m.speed()
	m.nextDone = next
	m.completion = m.eng.ScheduleOwned(now+sim.Time(eta*float64(sim.Second)), m.completeCb)
	return iso, nil
}

// acquireExec pops a recycled exec or allocates one.
func (m *Instance) acquireExec() *exec {
	n := len(m.freeExecs)
	if n == 0 {
		return &exec{}
	}
	ex := m.freeExecs[n-1]
	m.freeExecs[n-1] = nil
	m.freeExecs = m.freeExecs[:n-1]
	return ex
}

// releaseExec returns a finished exec to the freelist.
func (m *Instance) releaseExec(ex *exec) {
	ex.class = nil
	ex.done = nil
	m.freeExecs = append(m.freeExecs, ex)
}

// advance applies elapsed virtual time to all in-flight queries under
// processor sharing: with k queries running, each progresses at speed()/k.
func (m *Instance) advance() {
	now := m.eng.Now()
	if now <= m.lastTouch {
		m.lastTouch = now
		return
	}
	elapsed := (now - m.lastTouch).Seconds()
	m.lastTouch = now
	k := len(m.execs)
	if k == 0 {
		return
	}
	rate := m.speed() / float64(k)
	for _, ex := range m.execs {
		ex.remaining -= elapsed * rate
		if ex.remaining < 0 {
			ex.remaining = 0
		}
	}
}

// reschedule (re)computes the next completion event. The min-(remaining, id)
// selection is iteration-order independent, so the swap-remove slice cannot
// perturb a deterministic run.
func (m *Instance) reschedule() {
	if m.completion != nil {
		m.eng.CancelOwned(m.completion)
		m.completion = nil
	}
	if len(m.execs) == 0 {
		m.nextDone = nil
		return
	}
	next := m.execs[0]
	for _, ex := range m.execs[1:] {
		if ex.remaining < next.remaining ||
			(ex.remaining == next.remaining && ex.id < next.id) {
			next = ex
		}
	}
	k := float64(len(m.execs))
	eta := next.remaining * k / m.speed()
	at := m.eng.Now() + sim.Time(eta*float64(sim.Second))
	m.nextDone = next
	m.completion = m.eng.ScheduleOwned(at, m.completeCb)
}

// complete finishes the targeted query and reschedules.
func (m *Instance) complete(ex *exec) {
	if ex == nil || ex.idx < 0 || ex.idx >= len(m.execs) || m.execs[ex.idx] != ex {
		m.advance()
		m.reschedule()
		return
	}
	// Fused advance + next-completion selection, mirroring submit: one scan
	// decrements every in-flight query and picks the (remaining, id) minimum
	// among the survivors.
	now := m.eng.Now()
	dec := 0.0
	if now > m.lastTouch {
		dec = (now - m.lastTouch).Seconds() * (m.speed() / float64(len(m.execs)))
	}
	m.lastTouch = now
	var next *exec
	for _, other := range m.execs {
		if dec > 0 {
			other.remaining -= dec
			if other.remaining < 0 {
				other.remaining = 0
			}
		}
		if other == ex {
			continue
		}
		if next == nil || other.remaining < next.remaining ||
			(other.remaining == next.remaining && other.id < next.id) {
			next = other
		}
	}
	// Guard against float drift: the scheduled completion is authoritative.
	ex.remaining = 0
	i := ex.idx
	last := len(m.execs) - 1
	m.execs[i] = m.execs[last]
	m.execs[i].idx = i
	m.execs[last] = nil
	m.execs = m.execs[:last]
	ex.idx = -1
	m.running[ex.ref]--
	if m.tel != nil {
		m.mSojourn.Observe((now - ex.submit).Seconds())
		m.mRunning.Set(float64(len(m.execs)))
		m.mCompleted.Inc()
	}
	if m.completion != nil {
		m.eng.CancelOwned(m.completion)
		m.completion = nil
	}
	if next == nil {
		m.nextDone = nil
	} else {
		eta := next.remaining * float64(len(m.execs)) / m.speed()
		m.nextDone = next
		m.completion = m.eng.ScheduleOwned(now+sim.Time(eta*float64(sim.Second)), m.completeCb)
	}
	if ex.done != nil {
		ex.done(Result{
			Tenant:         m.in.ID(ex.ref),
			Class:          ex.class,
			Submit:         ex.submit,
			Finish:         m.eng.Now(),
			Isolated:       ex.isolated,
			MaxConcurrency: ex.maxConc,
		})
	} else if ex.tagged && m.onDone != nil {
		m.onDone(Result{
			Tenant:         m.in.ID(ex.ref),
			Class:          ex.class,
			Submit:         ex.submit,
			Finish:         m.eng.Now(),
			Isolated:       ex.isolated,
			MaxConcurrency: ex.maxConc,
		}, ex.tag)
	}
	m.releaseExec(ex)
}
