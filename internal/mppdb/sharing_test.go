package mppdb

import (
	"testing"

	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func newSharing(t *testing.T, nodes int, tenants ...string) (*sim.Engine, *Instance) {
	t.Helper()
	eng, m := newReady(t, nodes, tenants...)
	if err := m.SetSharing(true); err != nil {
		t.Fatal(err)
	}
	return eng, m
}

// TestSharedBatchMerges: three same-class queries submitted together run as
// ONE shared scan with demand iso·(1+2σ) — the widest scan paid once, each
// further member only its σ share — instead of each paying its full isolated
// demand under processor sharing.
func TestSharedBatchMerges(t *testing.T) {
	eng, m := newSharing(t, 4, "a")
	cl := testClass(0.2) // iso = 1 + 0.2·400/4 = 21s on this instance
	var results []Result
	for i := 0; i < 3; i++ {
		if _, err := m.Submit("a", cl, func(r Result) { results = append(results, r) }); err != nil {
			t.Fatal(err)
		}
	}
	if m.Running() != 3 || m.EffectiveRunning() != 1 {
		t.Fatalf("Running=%d EffectiveRunning=%d, want 3/1", m.Running(), m.EffectiveRunning())
	}
	eng.RunAll()
	if len(results) != 3 {
		t.Fatalf("%d completions, want 3", len(results))
	}
	iso := sim.Duration(cl.Latency(400, 4))
	demand := sim.Time(cl.SharedDemand(iso.Seconds(), 3*iso.Seconds()) * float64(sim.Second))
	if demand <= iso || demand >= 3*iso {
		t.Fatalf("batch demand %v outside (iso, 3·iso)", demand)
	}
	for _, r := range results {
		if r.Finish != demand {
			t.Errorf("member finish %v, want merged demand %v", r.Finish, demand)
		}
		if r.MaxConcurrency != 3 {
			t.Errorf("member MaxConcurrency %d, want 3 (residency)", r.MaxConcurrency)
		}
		if r.EffectiveConcurrency != 1 {
			t.Errorf("member EffectiveConcurrency %d, want 1", r.EffectiveConcurrency)
		}
	}
	if b, j := m.SharedStats(); b != 1 || j != 2 {
		t.Errorf("SharedStats = %d batches / %d joins, want 1/2", b, j)
	}
	if m.Busy() || m.Running() != 0 || m.TenantRunning("a") != 0 {
		t.Error("bookkeeping wrong after completion")
	}
}

// TestSharedLateJoinerAttaches: a same-class query arriving mid-scan attaches
// to the in-flight batch — the batch's remaining demand grows by exactly the
// joiner's marginal σ share, both members finish together at iso·(1+σ), and
// the joiner's own latency is therefore LESS than its isolated latency (it
// rides the scan already in progress).
func TestSharedLateJoinerAttaches(t *testing.T) {
	eng, m := newSharing(t, 4, "a")
	cl := testClass(0.2)
	iso := sim.Duration(cl.Latency(400, 4))
	var results []Result
	if _, err := m.Submit("a", cl, func(r Result) { results = append(results, r) }); err != nil {
		t.Fatal(err)
	}
	// Half the scan later, a second query of the class arrives.
	eng.Run(iso / 2)
	if _, err := m.Submit("a", cl, func(r Result) { results = append(results, r) }); err != nil {
		t.Fatal(err)
	}
	if m.Running() != 2 || m.EffectiveRunning() != 1 {
		t.Fatalf("Running=%d EffectiveRunning=%d, want 2/1", m.Running(), m.EffectiveRunning())
	}
	eng.RunAll()
	if len(results) != 2 {
		t.Fatalf("%d completions, want 2", len(results))
	}
	demand := sim.Time(cl.SharedDemand(iso.Seconds(), 2*iso.Seconds()) * float64(sim.Second))
	for _, r := range results {
		if r.Finish != demand {
			t.Errorf("finish %v, want %v (batch extended by the σ share only)", r.Finish, demand)
		}
	}
	// The joiner submitted at iso/2 and finished at iso·(1+σ): latency
	// iso·(σ+1/2) < iso — it shared the leader's scan.
	if lat := results[1].Latency(); lat >= iso {
		t.Errorf("joiner latency %v not below isolated %v", lat, iso)
	}
	if b, j := m.SharedStats(); b != 1 || j != 1 {
		t.Errorf("SharedStats = %d/%d, want 1/1", b, j)
	}
}

// TestSharingDistinctClassesDegenerate: queries of different classes never
// interact — with sharing on they finish exactly when a plain instance
// finishes them.
func TestSharingDistinctClassesDegenerate(t *testing.T) {
	c1, c2 := testClass(0.2), &queries.Class{ID: "U", FixedSec: 2, ScanSecGB: 0.1}
	run := func(shared bool) []Result {
		eng, m := newReady(t, 4, "a")
		if shared {
			if err := m.SetSharing(true); err != nil {
				t.Fatal(err)
			}
		}
		var out []Result
		for _, cl := range []*queries.Class{c1, c2} {
			if _, err := m.Submit("a", cl, func(r Result) { out = append(out, r) }); err != nil {
				t.Fatal(err)
			}
		}
		eng.RunAll()
		return out
	}
	plain, shared := run(false), run(true)
	if len(plain) != 2 || len(shared) != 2 {
		t.Fatalf("completions %d/%d", len(plain), len(shared))
	}
	for i := range plain {
		if plain[i].Finish != shared[i].Finish || plain[i].Class != shared[i].Class {
			t.Errorf("result %d diverged: plain finish %v, shared %v", i, plain[i].Finish, shared[i].Finish)
		}
		if shared[i].EffectiveConcurrency != plain[i].MaxConcurrency {
			t.Errorf("result %d: effective %d, want plain concurrency %d",
				i, shared[i].EffectiveConcurrency, plain[i].MaxConcurrency)
		}
	}
}

// TestSharedBatchDegradedPaysOnce: on an instance running at half speed, a
// shared batch pays the 2× stretch exactly once — its merged demand divided
// by the speed factor — not once per member.
func TestSharedBatchDegradedPaysOnce(t *testing.T) {
	eng, m := newSharing(t, 4, "a")
	if err := m.SetSlowdown(0.5); err != nil {
		t.Fatal(err)
	}
	cl := testClass(0.2)
	var results []Result
	for i := 0; i < 3; i++ {
		if _, err := m.Submit("a", cl, func(r Result) { results = append(results, r) }); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunAll()
	if len(results) != 3 {
		t.Fatalf("%d completions, want 3", len(results))
	}
	iso := sim.Duration(cl.Latency(400, 4))
	demand := sim.Time(cl.SharedDemand(iso.Seconds(), 3*iso.Seconds()) * float64(sim.Second))
	for _, r := range results {
		if got, want := r.Finish, 2*demand; got != want {
			t.Errorf("member finish %v, want %v (merged demand stretched once)", got, want)
		}
	}
}

// TestSharedHedgeCancel: a hedged duplicate that attached to a live batch
// cancels cleanly — no completion fires for it, the service-demand histogram
// never saw it, and the primary's accounting is untouched.
func TestSharedHedgeCancel(t *testing.T) {
	eng, m := newSharing(t, 4, "a")
	hub := telemetry.NewHub(eng, 0.999)
	m.SetTelemetry(hub)
	cl := testClass(0.2)
	ref, _ := m.Interner().Lookup("a")
	var done []uint64
	m.SetCompletionHandler(func(r Result, tag uint64) { done = append(done, tag) })
	if _, err := m.SubmitTagged(ref, cl, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SubmitHedge(ref, cl, 2); err != nil {
		t.Fatal(err)
	}
	if m.Running() != 2 {
		t.Fatalf("Running=%d, want 2", m.Running())
	}
	if !m.CancelTagged(2) {
		t.Fatal("hedge cancel failed")
	}
	if m.CancelTagged(2) {
		t.Fatal("hedge cancelled twice")
	}
	if m.Running() != 1 || m.RefRunning(ref) != 1 {
		t.Fatalf("Running=%d after cancel, want 1", m.Running())
	}
	eng.RunAll()
	if len(done) != 1 || done[0] != 1 {
		t.Fatalf("completions %v, want primary tag 1 only", done)
	}
	svc := hub.Registry.Histogram("thrifty_mppdb_service_seconds", nil, "mppdb", m.ID())
	if svc.Count() != 1 {
		t.Errorf("service histogram saw %d observations, want 1 (hedge skipped)", svc.Count())
	}
	comp := hub.Registry.Counter("thrifty_mppdb_completed_total", "mppdb", m.ID())
	if comp.Value() != 1 {
		t.Errorf("completed counter %d, want 1", comp.Value())
	}
}

// TestSharedCancelLiveMember: detaching one member from a live multi-member
// batch keeps the batch's grown demand (sunk cost); cancelling a batch's
// sole member withdraws the batch entirely, and the class's next submit
// starts a fresh scan.
func TestSharedCancelLiveMember(t *testing.T) {
	eng, m := newSharing(t, 4, "a")
	cl := testClass(0.2)
	ref, _ := m.Interner().Lookup("a")
	var done []uint64
	var finish []sim.Time
	m.SetCompletionHandler(func(r Result, tag uint64) {
		done = append(done, tag)
		finish = append(finish, r.Finish)
	})
	if _, err := m.SubmitTagged(ref, cl, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SubmitTagged(ref, cl, 2); err != nil {
		t.Fatal(err)
	}
	if !m.CancelTagged(2) {
		t.Fatal("live-member cancel failed")
	}
	if m.Running() != 1 || m.EffectiveRunning() != 1 {
		t.Fatalf("Running=%d/%d after member cancel, want 1/1", m.Running(), m.EffectiveRunning())
	}
	eng.RunAll()
	iso := sim.Duration(cl.Latency(400, 4))
	demand := sim.Time(cl.SharedDemand(iso.Seconds(), 2*iso.Seconds()) * float64(sim.Second))
	if len(done) != 1 || done[0] != 1 {
		t.Fatalf("completions %v, want [1]", done)
	}
	if finish[0] != demand {
		t.Errorf("survivor finish %v, want %v (grown demand is sunk)", finish[0], demand)
	}

	// Sole-member cancel withdraws the batch; the class restarts cleanly.
	done, finish = nil, nil
	if _, err := m.SubmitTagged(ref, cl, 4); err != nil {
		t.Fatal(err)
	}
	if !m.CancelTagged(4) {
		t.Fatal("sole-member cancel failed")
	}
	if m.Running() != 0 || m.EffectiveRunning() != 0 {
		t.Fatalf("Running=%d/%d after sole cancel, want 0/0", m.Running(), m.EffectiveRunning())
	}
	start := eng.Now()
	if _, err := m.SubmitTagged(ref, cl, 5); err != nil {
		t.Fatal(err)
	}
	eng.RunAll()
	if len(done) != 1 || done[0] != 5 {
		t.Fatalf("completions %v, want fresh tag 5", done)
	}
	if finish[0] != start+iso {
		t.Errorf("fresh batch finish %v, want %v (full isolated scan)", finish[0], start+iso)
	}
}

// TestSharingToggleGuard: the mode cannot change with queries in flight.
func TestSharingToggleGuard(t *testing.T) {
	eng, m := newReady(t, 4, "a")
	if _, err := m.Submit("a", testClass(0.2), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.SetSharing(true); err == nil {
		t.Fatal("sharing toggled with a query in flight")
	}
	eng.RunAll()
	if err := m.SetSharing(true); err != nil {
		t.Fatal(err)
	}
}
