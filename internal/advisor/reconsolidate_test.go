package advisor

import (
	"testing"

	"repro/internal/epoch"
	"repro/internal/sim"
	"repro/internal/workload"
)

// reconWorld plans 12 tenants in 4 disjoint office windows.
func reconWorld(t *testing.T) (*Advisor, *Plan, []*workload.TenantLog) {
	t.Helper()
	a, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	logs := officeLogs(12, 2, 4)
	plan, err := a.Plan(logs, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	return a, plan, logs
}

func TestReconsolidateNoChurnKeepsEverything(t *testing.T) {
	a, plan, logs := reconWorld(t)
	next, rep, err := a.Reconsolidate(ReconsolidationInput{Previous: plan, Logs: logs}, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KeptGroups != len(plan.Groups) {
		t.Errorf("kept %d of %d groups", rep.KeptGroups, len(plan.Groups))
	}
	if rep.RepackedTenants != 0 || len(rep.MovedTenants) != 0 || rep.DataToMoveGB != 0 {
		t.Errorf("stable cycle reported churn: %+v", rep)
	}
	if next.NodesUsed() != plan.NodesUsed() {
		t.Errorf("node usage changed without churn: %d vs %d", next.NodesUsed(), plan.NodesUsed())
	}
}

func TestReconsolidateDeparture(t *testing.T) {
	a, plan, prev := reconWorld(t)
	// Remove one tenant from the population.
	gone := plan.Groups[0].TenantIDs[0]
	var logs []*workload.TenantLog
	for _, tl := range prev {
		if tl.Tenant.ID != gone {
			logs = append(logs, tl)
		}
	}
	next, rep, err := a.Reconsolidate(ReconsolidationInput{Previous: plan, Logs: logs}, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Departed) != 1 || rep.Departed[0] != gone {
		t.Errorf("departed = %v, want [%s]", rep.Departed, gone)
	}
	// The departed tenant's groupmates get repacked.
	want := len(plan.Groups[0].TenantIDs) - 1
	if rep.RepackedTenants != want {
		t.Errorf("repacked %d tenants, want %d", rep.RepackedTenants, want)
	}
	// Every surviving tenant is placed exactly once.
	placed := map[string]int{}
	for _, g := range next.Groups {
		for _, id := range g.TenantIDs {
			placed[id]++
		}
	}
	for _, tl := range logs {
		if placed[tl.Tenant.ID] != 1 {
			t.Errorf("tenant %s placed %d times", tl.Tenant.ID, placed[tl.Tenant.ID])
		}
	}
	if placed[gone] != 0 {
		t.Error("departed tenant still placed")
	}
}

func TestReconsolidateNewTenantAndFlaggedGroup(t *testing.T) {
	a, plan, logs := reconWorld(t)
	// A new tenant arrives with activity in window 0.
	newbie := mkLog("Tnew", 2, epoch.Activity{
		{Start: 10 * sim.Minute, End: 40 * sim.Minute},
	})
	logs = append(logs, newbie)
	flag := plan.Groups[len(plan.Groups)-1].ID
	next, rep, err := a.Reconsolidate(ReconsolidationInput{
		Previous:      plan,
		Logs:          logs,
		FlaggedGroups: []string{flag},
	}, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.NewTenants) != 1 || rep.NewTenants[0] != "Tnew" {
		t.Errorf("new tenants = %v", rep.NewTenants)
	}
	if rep.KeptGroups != len(plan.Groups)-1 {
		t.Errorf("kept %d groups, want %d (one flagged)", rep.KeptGroups, len(plan.Groups)-1)
	}
	// The new tenant must be placed and counted as moved (needs loading).
	if _, ok := next.Group("Tnew"); !ok {
		t.Fatal("new tenant not placed")
	}
	foundMoved := false
	for _, id := range rep.MovedTenants {
		if id == "Tnew" {
			foundMoved = true
		}
	}
	if !foundMoved {
		t.Error("new tenant not in the moved list")
	}
	if rep.DataToMoveGB < newbie.Tenant.DataGB*float64(a.cfg.R) {
		t.Errorf("DataToMoveGB = %.0f, must cover the new tenant's %g GB × R",
			rep.DataToMoveGB, newbie.Tenant.DataGB)
	}
	if rep.MaxProvisionTime <= 0 {
		t.Error("no provisioning estimate for the migration")
	}
}

func TestReconsolidateRepacksNowInfeasibleGroup(t *testing.T) {
	a, plan, prev := reconWorld(t)
	// Make every member of group 0 continuously active in fresh history —
	// the group's TTP collapses and it must be repacked even though it is
	// not flagged and nobody departed. (A continuously active tenant also
	// trips the always-active exclusion, which is fine: it must not stay in
	// the kept group either way.)
	g0 := map[string]bool{}
	for _, id := range plan.Groups[0].TenantIDs {
		g0[id] = true
	}
	var logs []*workload.TenantLog
	for _, tl := range prev {
		if g0[tl.Tenant.ID] {
			tl = mkLog(tl.Tenant.ID, tl.Tenant.Nodes, epoch.Activity{{Start: 0, End: sim.Day}})
		}
		logs = append(logs, tl)
	}
	next, rep, err := a.Reconsolidate(ReconsolidationInput{Previous: plan, Logs: logs}, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KeptGroups != len(plan.Groups)-1 {
		t.Errorf("kept %d groups, want %d (one infeasible)", rep.KeptGroups, len(plan.Groups)-1)
	}
	// The now-hot tenants end up excluded (always active), not grouped.
	for id := range g0 {
		if _, ok := next.Group(id); ok {
			t.Errorf("always-active tenant %s still consolidated", id)
		}
	}
}

func TestReconsolidateLastTenantOfGroupDeparts(t *testing.T) {
	a, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A population of one: the plan has exactly one single-tenant group.
	solo := mkLog("Tsolo", 2, epoch.Activity{{Start: sim.Hour, End: 2 * sim.Hour}})
	plan, err := a.Plan([]*workload.TenantLog{solo}, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Groups) != 1 || len(plan.Groups[0].TenantIDs) != 1 {
		t.Fatalf("want one single-tenant group, got %+v", plan.Groups)
	}
	// The tenant de-registers: the next cycle's population is empty.
	next, rep, err := a.Reconsolidate(ReconsolidationInput{Previous: plan, Logs: nil}, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(next.Groups) != 0 {
		t.Errorf("empty population still has groups: %+v", next.Groups)
	}
	if len(rep.Departed) != 1 || rep.Departed[0] != "Tsolo" {
		t.Errorf("departed = %v, want [Tsolo]", rep.Departed)
	}
	if rep.KeptGroups != 0 || rep.RepackedTenants != 0 {
		t.Errorf("kept=%d repacked=%d, want 0/0", rep.KeptGroups, rep.RepackedTenants)
	}
	if len(rep.Decisions) != 1 || rep.Decisions[0].Kept || rep.Decisions[0].Reason != ReasonDepartedMember {
		t.Errorf("decisions = %+v, want one repack for departed-member", rep.Decisions)
	}
}

func TestReconsolidateEveryGroupFlagged(t *testing.T) {
	a, plan, logs := reconWorld(t)
	var flags []string
	for _, g := range plan.Groups {
		flags = append(flags, g.ID)
	}
	next, rep, err := a.Reconsolidate(ReconsolidationInput{
		Previous:      plan,
		Logs:          logs,
		FlaggedGroups: flags,
	}, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KeptGroups != 0 {
		t.Errorf("kept %d groups despite flagging all", rep.KeptGroups)
	}
	if rep.RepackedTenants != len(logs) {
		t.Errorf("repacked %d tenants, want all %d", rep.RepackedTenants, len(logs))
	}
	if len(rep.Decisions) != len(plan.Groups) {
		t.Fatalf("got %d decisions, want %d", len(rep.Decisions), len(plan.Groups))
	}
	for _, d := range rep.Decisions {
		if d.Kept || d.Reason != ReasonFlagged {
			t.Errorf("decision %+v, want repack/flagged", d)
		}
	}
	// Everyone must be placed exactly once in the fresh plan.
	placed := map[string]int{}
	for _, g := range next.Groups {
		for _, id := range g.TenantIDs {
			placed[id]++
		}
	}
	for _, tl := range logs {
		if placed[tl.Tenant.ID] != 1 {
			t.Errorf("tenant %s placed %d times", tl.Tenant.ID, placed[tl.Tenant.ID])
		}
	}
}

func TestReconsolidateJoinDuringGroupDeparture(t *testing.T) {
	a, plan, prev := reconWorld(t)
	// One member of group 0 departs while a new tenant with the same
	// activity shape joins in the same cycle: the join must land in the
	// repack pool alongside the departed tenant's groupmates.
	gone := plan.Groups[0].TenantIDs[0]
	var goneAct epoch.Activity
	var logs []*workload.TenantLog
	for _, tl := range prev {
		if tl.Tenant.ID == gone {
			goneAct = tl.Activity
			continue
		}
		logs = append(logs, tl)
	}
	logs = append(logs, mkLog("Tjoin", 2, goneAct))
	next, rep, err := a.Reconsolidate(ReconsolidationInput{Previous: plan, Logs: logs}, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Departed) != 1 || rep.Departed[0] != gone {
		t.Errorf("departed = %v, want [%s]", rep.Departed, gone)
	}
	if len(rep.NewTenants) != 1 || rep.NewTenants[0] != "Tjoin" {
		t.Errorf("new tenants = %v, want [Tjoin]", rep.NewTenants)
	}
	// Pool = surviving groupmates of group 0 + the joiner.
	want := len(plan.Groups[0].TenantIDs) - 1 + 1
	if rep.RepackedTenants != want {
		t.Errorf("repacked %d tenants, want %d", rep.RepackedTenants, want)
	}
	if _, ok := next.Group("Tjoin"); !ok {
		t.Error("joiner not placed")
	}
	if _, ok := next.Group(gone); ok {
		t.Error("departed tenant still placed")
	}
	// The disturbed group repacks for the departure; the others keep.
	for i, d := range rep.Decisions {
		if plan.Groups[i].ID != d.Group {
			t.Fatalf("decision %d out of plan order: %s vs %s", i, d.Group, plan.Groups[i].ID)
		}
		if d.Group == plan.Groups[0].ID {
			if d.Kept || d.Reason != ReasonDepartedMember {
				t.Errorf("group 0 decision %+v, want repack/departed-member", d)
			}
		} else if !d.Kept || d.Reason != ReasonUnflagged {
			t.Errorf("decision %+v, want kept/unflagged", d)
		}
	}
}

func TestReconsolidateRequiresPrevious(t *testing.T) {
	a, _, logs := reconWorld(t)
	if _, _, err := a.Reconsolidate(ReconsolidationInput{Logs: logs}, sim.Day); err == nil {
		t.Error("missing previous plan accepted")
	}
}
