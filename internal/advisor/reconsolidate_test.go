package advisor

import (
	"testing"

	"repro/internal/epoch"
	"repro/internal/sim"
	"repro/internal/workload"
)

// reconWorld plans 12 tenants in 4 disjoint office windows.
func reconWorld(t *testing.T) (*Advisor, *Plan, []*workload.TenantLog) {
	t.Helper()
	a, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	logs := officeLogs(12, 2, 4)
	plan, err := a.Plan(logs, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	return a, plan, logs
}

func TestReconsolidateNoChurnKeepsEverything(t *testing.T) {
	a, plan, logs := reconWorld(t)
	next, rep, err := a.Reconsolidate(ReconsolidationInput{Previous: plan, Logs: logs}, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KeptGroups != len(plan.Groups) {
		t.Errorf("kept %d of %d groups", rep.KeptGroups, len(plan.Groups))
	}
	if rep.RepackedTenants != 0 || len(rep.MovedTenants) != 0 || rep.DataToMoveGB != 0 {
		t.Errorf("stable cycle reported churn: %+v", rep)
	}
	if next.NodesUsed() != plan.NodesUsed() {
		t.Errorf("node usage changed without churn: %d vs %d", next.NodesUsed(), plan.NodesUsed())
	}
}

func TestReconsolidateDeparture(t *testing.T) {
	a, plan, prev := reconWorld(t)
	// Remove one tenant from the population.
	gone := plan.Groups[0].TenantIDs[0]
	var logs []*workload.TenantLog
	for _, tl := range prev {
		if tl.Tenant.ID != gone {
			logs = append(logs, tl)
		}
	}
	next, rep, err := a.Reconsolidate(ReconsolidationInput{Previous: plan, Logs: logs}, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Departed) != 1 || rep.Departed[0] != gone {
		t.Errorf("departed = %v, want [%s]", rep.Departed, gone)
	}
	// The departed tenant's groupmates get repacked.
	want := len(plan.Groups[0].TenantIDs) - 1
	if rep.RepackedTenants != want {
		t.Errorf("repacked %d tenants, want %d", rep.RepackedTenants, want)
	}
	// Every surviving tenant is placed exactly once.
	placed := map[string]int{}
	for _, g := range next.Groups {
		for _, id := range g.TenantIDs {
			placed[id]++
		}
	}
	for _, tl := range logs {
		if placed[tl.Tenant.ID] != 1 {
			t.Errorf("tenant %s placed %d times", tl.Tenant.ID, placed[tl.Tenant.ID])
		}
	}
	if placed[gone] != 0 {
		t.Error("departed tenant still placed")
	}
}

func TestReconsolidateNewTenantAndFlaggedGroup(t *testing.T) {
	a, plan, logs := reconWorld(t)
	// A new tenant arrives with activity in window 0.
	newbie := mkLog("Tnew", 2, epoch.Activity{
		{Start: 10 * sim.Minute, End: 40 * sim.Minute},
	})
	logs = append(logs, newbie)
	flag := plan.Groups[len(plan.Groups)-1].ID
	next, rep, err := a.Reconsolidate(ReconsolidationInput{
		Previous:      plan,
		Logs:          logs,
		FlaggedGroups: []string{flag},
	}, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.NewTenants) != 1 || rep.NewTenants[0] != "Tnew" {
		t.Errorf("new tenants = %v", rep.NewTenants)
	}
	if rep.KeptGroups != len(plan.Groups)-1 {
		t.Errorf("kept %d groups, want %d (one flagged)", rep.KeptGroups, len(plan.Groups)-1)
	}
	// The new tenant must be placed and counted as moved (needs loading).
	if _, ok := next.Group("Tnew"); !ok {
		t.Fatal("new tenant not placed")
	}
	foundMoved := false
	for _, id := range rep.MovedTenants {
		if id == "Tnew" {
			foundMoved = true
		}
	}
	if !foundMoved {
		t.Error("new tenant not in the moved list")
	}
	if rep.DataToMoveGB < newbie.Tenant.DataGB*float64(a.cfg.R) {
		t.Errorf("DataToMoveGB = %.0f, must cover the new tenant's %g GB × R",
			rep.DataToMoveGB, newbie.Tenant.DataGB)
	}
	if rep.MaxProvisionTime <= 0 {
		t.Error("no provisioning estimate for the migration")
	}
}

func TestReconsolidateRepacksNowInfeasibleGroup(t *testing.T) {
	a, plan, prev := reconWorld(t)
	// Make every member of group 0 continuously active in fresh history —
	// the group's TTP collapses and it must be repacked even though it is
	// not flagged and nobody departed. (A continuously active tenant also
	// trips the always-active exclusion, which is fine: it must not stay in
	// the kept group either way.)
	g0 := map[string]bool{}
	for _, id := range plan.Groups[0].TenantIDs {
		g0[id] = true
	}
	var logs []*workload.TenantLog
	for _, tl := range prev {
		if g0[tl.Tenant.ID] {
			tl = mkLog(tl.Tenant.ID, tl.Tenant.Nodes, epoch.Activity{{Start: 0, End: sim.Day}})
		}
		logs = append(logs, tl)
	}
	next, rep, err := a.Reconsolidate(ReconsolidationInput{Previous: plan, Logs: logs}, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KeptGroups != len(plan.Groups)-1 {
		t.Errorf("kept %d groups, want %d (one infeasible)", rep.KeptGroups, len(plan.Groups)-1)
	}
	// The now-hot tenants end up excluded (always active), not grouped.
	for id := range g0 {
		if _, ok := next.Group(id); ok {
			t.Errorf("always-active tenant %s still consolidated", id)
		}
	}
}

func TestReconsolidateRequiresPrevious(t *testing.T) {
	a, _, logs := reconWorld(t)
	if _, _, err := a.Reconsolidate(ReconsolidationInput{Logs: logs}, sim.Day); err == nil {
		t.Error("missing previous plan accepted")
	}
}
