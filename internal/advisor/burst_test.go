package advisor

import (
	"testing"

	"repro/internal/epoch"
	"repro/internal/sim"
)

// burstyActivity builds 28 days of light office activity plus heavy bursts
// every periodDays.
func burstyActivity(periodDays int) epoch.Activity {
	var ivs []epoch.Interval
	for d := 0; d < 28; d++ {
		day := sim.Time(d) * sim.Day
		if d%7 >= 5 {
			continue // weekends off
		}
		// Light baseline: two 20-minute busy stretches.
		ivs = append(ivs,
			epoch.Interval{Start: day + 9*sim.Hour, End: day + 9*sim.Hour + 20*sim.Minute},
			epoch.Interval{Start: day + 14*sim.Hour, End: day + 14*sim.Hour + 20*sim.Minute})
		if periodDays > 0 && d%periodDays == 3 { // a Thursday, never a weekend
			// Burst: 10 hours of near-continuous reporting.
			ivs = append(ivs, epoch.Interval{Start: day + 8*sim.Hour, End: day + 18*sim.Hour})
		}
	}
	return epoch.Normalize(ivs)
}

func TestDetectBurstsPeriodic(t *testing.T) {
	p := DetectBursts(burstyActivity(7), 28*sim.Day)
	if len(p.BurstDays) < 3 {
		t.Fatalf("burst days = %v, want the weekly bursts", p.BurstDays)
	}
	if !p.Periodic {
		t.Fatalf("weekly bursts not classified periodic: %+v", p)
	}
	if p.PeriodDays != 7 {
		t.Errorf("period = %d days, want 7", p.PeriodDays)
	}
	if !p.PredictsBurstWithin(28, 7) {
		t.Error("next weekly burst not predicted within a week")
	}
}

func TestDetectBurstsNoneOnRegularTenant(t *testing.T) {
	p := DetectBursts(burstyActivity(0), 28*sim.Day)
	if len(p.BurstDays) != 0 || p.Periodic {
		t.Errorf("regular office tenant flagged bursty: %+v", p)
	}
	if p.PredictsBurstWithin(28, 7) {
		t.Error("regular tenant predicted to burst")
	}
}

func TestDetectBurstsSingleSpikeNotPeriodic(t *testing.T) {
	var ivs []epoch.Interval
	for d := 0; d < 28; d++ {
		day := sim.Time(d) * sim.Day
		ivs = append(ivs, epoch.Interval{Start: day + 9*sim.Hour, End: day + 9*sim.Hour + 15*sim.Minute})
	}
	// One big one-off spike.
	ivs = append(ivs, epoch.Interval{Start: 10*sim.Day + 8*sim.Hour, End: 10*sim.Day + 18*sim.Hour})
	p := DetectBursts(epoch.Normalize(ivs), 28*sim.Day)
	if p.Periodic {
		t.Errorf("one-off spike classified periodic: %+v", p)
	}
	if len(p.BurstDays) != 1 || p.BurstDays[0] != 10 {
		t.Errorf("burst days = %v, want [10]", p.BurstDays)
	}
}

func TestDetectBurstsDegenerate(t *testing.T) {
	if p := DetectBursts(nil, 0); len(p.DailyRatio) != 0 {
		t.Error("zero horizon not degenerate")
	}
	if p := DetectBursts(nil, 5*sim.Day); len(p.BurstDays) != 0 {
		t.Error("idle tenant has bursts")
	}
}

func TestPredictRollsForward(t *testing.T) {
	// A profile whose "next" burst is in the past rolls forward by periods.
	p := BurstProfile{Periodic: true, PeriodDays: 7, NextBurstDay: 10}
	if !p.PredictsBurstWithin(28, 7) {
		t.Error("rolled-forward burst (day 31) not within [28, 35)")
	}
	if p.PredictsBurstWithin(28, 2) {
		t.Error("burst on day 31 reported within [28, 30)")
	}
}

// TestPlanExcludesBurstyTenant wires detection through the advisor.
func TestPlanExcludesBurstyTenant(t *testing.T) {
	a, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	logs := officeLogs(6, 2, 6)
	logs = append(logs, mkLog("fiscal", 2, burstyActivity(7)))
	plan, err := a.Plan(logs, 28*sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range plan.Excluded {
		if e.TenantID == "fiscal" {
			found = true
		}
	}
	if !found {
		t.Errorf("bursty tenant not excluded; exclusions: %+v", plan.Excluded)
	}
	// Disabled lookahead keeps the tenant in.
	cfg := DefaultConfig()
	cfg.BurstLookaheadDays = 0
	a2, _ := New(cfg)
	plan2, err := a2.Plan(logs, 28*sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plan2.Group("fiscal"); !ok {
		t.Error("with lookahead disabled the bursty tenant should be consolidated")
	}
}
