// Package advisor implements the Deployment Advisor (thesis §3b): it takes
// tenant activity statistics, per-tenant requirements, a replication factor
// R and a performance SLA guarantee P, and produces a deployment plan —
// cluster design plus tenant placement — by solving the tenant-grouping
// optimization.
//
// Tenants that offer no consolidation room are excluded up front (§3:
// "Tenants that are always active and/or with more than terabytes of data
// could be detected by Thrifty and they will be excluded from consolidation"
// — they are served by dedicated nodes under another service plan).
package advisor

import (
	"fmt"

	"repro/internal/epoch"
	"repro/internal/grouping"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/tdd"
	"repro/internal/workload"
)

// Algorithm selects the grouping solver.
type Algorithm string

const (
	// TwoStep is the paper's two-step heuristic (the default).
	TwoStep Algorithm = "2-step"
	// FFD is the First-Fit-Decreasing baseline.
	FFD Algorithm = "ffd"
)

// Config parameterizes the advisor.
type Config struct {
	// R is the replication factor (Table 7.1 default: 3).
	R int
	// P is the performance SLA guarantee (default: 0.999).
	P float64
	// Epoch is the activity quantization width (default: 3s; see
	// DESIGN.md §4b on the epoch-to-query-duration ratio).
	Epoch sim.Time
	// Algorithm selects the solver (default TwoStep).
	Algorithm Algorithm
	// MaxActiveRatio excludes always-active tenants: a tenant active more
	// than this fraction of the horizon is served on dedicated nodes.
	MaxActiveRatio float64
	// MaxDataGB excludes oversized tenants.
	MaxDataGB float64
	// BurstLookaheadDays excludes tenants whose history shows regular
	// activity bursts recurring within this many days after deployment
	// (§5.1: bursty tenants are excluded "before the bursts arrive").
	// 0 disables the check.
	BurstLookaheadDays int
	// U optionally widens every group's tuning MPPDB G₀ by this many nodes
	// beyond n₁ (§6 manual tuning). 0 keeps U = n₁.
	UExtra int
	// SolverWorkers bounds the grouping solver's parallelism (see
	// grouping.Solver): 0 or 1 solves serially, larger values shard the
	// T_best candidate scans and solve size classes concurrently. The
	// partition produced is identical at any worker count.
	SolverWorkers int
	// FailureDomains records the failure-domain count of the pool the plan
	// will deploy onto (racks/zones). The grouping itself is
	// placement-agnostic — the master's spread-aware acquisition realizes
	// domain diversity at deploy time — but a plan that knows the domain
	// count documents the R-vs-domains relationship: with R ≥ 2 replicas
	// and ≥ 2 domains, spread placement keeps every group available through
	// any single-domain outage. 0 means unknown/single-domain.
	FailureDomains int
	// Sharing enables shared-work-aware planning: the fuzzy-capacity test
	// is relaxed by the catalog's share-discount weights (queries.ShareModel)
	// so T_best can pack tenants denser where same-class scan sharing
	// absorbs over-capacity epochs. Greedy T_best is not monotone under
	// constraint relaxation, so the advisor solves BOTH tests and keeps the
	// cheaper plan — a sharing plan never uses more nodes than the plain
	// one. Off (false) is byte-identical to the paper's planner.
	Sharing bool
	// Share overrides the derived share model when Sharing is on. Nil
	// derives one from the default catalog at the workload generator's
	// action mix; its R must match Config.R.
	Share *queries.ShareModel
}

// ShareWeights returns the grouping-layer capacity-credit weights the
// configuration implies: nil when sharing is off, otherwise the configured
// or derived model's weight vector.
func (c *Config) ShareWeights() []float64 {
	if !c.Sharing {
		return nil
	}
	if c.Share != nil {
		return c.Share.Weights()
	}
	m, err := queries.NewShareModel(queries.Default(), c.R, workload.MeanActionQueries)
	if err != nil {
		return nil
	}
	return m.Weights()
}

// DefaultConfig returns the Table 7.1 default parameters.
func DefaultConfig() Config {
	return Config{
		R:                  3,
		P:                  0.999,
		Epoch:              3 * sim.Second,
		Algorithm:          TwoStep,
		MaxActiveRatio:     0.90,
		MaxDataGB:          10 * 1024,
		BurstLookaheadDays: 7,
	}
}

// Exclusion names a tenant left out of consolidation and why.
type Exclusion struct {
	TenantID string
	Reason   string
	// Nodes the tenant gets on its dedicated plan.
	Nodes int
}

// PlannedGroup is one tenant-group of the deployment plan.
type PlannedGroup struct {
	// ID is the group identifier, e.g. "TG-0007".
	ID string
	// TenantIDs are the member tenants.
	TenantIDs []string
	// Design is the group's cluster design (A = R MPPDBs of n₁ nodes; G₀
	// may be widened by UExtra).
	Design tdd.ClusterDesign
	// TTP and MaxActive are the grouping-time statistics.
	TTP       float64
	MaxActive int
}

// Plan is the advisor's output.
type Plan struct {
	Config Config
	Groups []PlannedGroup
	// Excluded tenants are not consolidated.
	Excluded []Exclusion
	// RequestedNodes is Σ nᵢ over consolidated tenants.
	RequestedNodes int
	// Solver diagnostics.
	Algorithm string
	SolveTime sim.Time
	// Shared reports that the sharing-credited capacity test produced this
	// plan (Config.Sharing was on AND the credited solution packed strictly
	// fewer nodes than the plain one).
	Shared bool
}

// NodesUsed returns the machine nodes the consolidated deployment consumes.
func (p *Plan) NodesUsed() int {
	n := 0
	for i := range p.Groups {
		n += p.Groups[i].Design.TotalNodes()
	}
	return n
}

// Effectiveness returns the consolidation effectiveness over the
// consolidated tenants (fraction of requested nodes saved).
func (p *Plan) Effectiveness() float64 {
	if p.RequestedNodes == 0 {
		return 0
	}
	return 1 - float64(p.NodesUsed())/float64(p.RequestedNodes)
}

// MeanGroupSize returns the average tenants per group.
func (p *Plan) MeanGroupSize() float64 {
	if len(p.Groups) == 0 {
		return 0
	}
	n := 0
	for i := range p.Groups {
		n += len(p.Groups[i].TenantIDs)
	}
	return float64(n) / float64(len(p.Groups))
}

// Group returns the planned group hosting the tenant, if any.
func (p *Plan) Group(tenantID string) (*PlannedGroup, bool) {
	for i := range p.Groups {
		for _, id := range p.Groups[i].TenantIDs {
			if id == tenantID {
				return &p.Groups[i], true
			}
		}
	}
	return nil, false
}

// Advisor computes deployment plans.
type Advisor struct {
	cfg Config
}

// New validates the configuration and returns an advisor.
func New(cfg Config) (*Advisor, error) {
	if cfg.R < 1 {
		return nil, fmt.Errorf("advisor: R=%d", cfg.R)
	}
	if cfg.P <= 0 || cfg.P > 1 {
		return nil, fmt.Errorf("advisor: P=%v", cfg.P)
	}
	if cfg.Epoch <= 0 {
		return nil, fmt.Errorf("advisor: epoch %v", cfg.Epoch)
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = TwoStep
	}
	if cfg.Algorithm != TwoStep && cfg.Algorithm != FFD {
		return nil, fmt.Errorf("advisor: unknown algorithm %q", cfg.Algorithm)
	}
	if cfg.MaxActiveRatio <= 0 {
		cfg.MaxActiveRatio = 0.90
	}
	if cfg.MaxDataGB <= 0 {
		cfg.MaxDataGB = 10 * 1024
	}
	if cfg.UExtra < 0 {
		return nil, fmt.Errorf("advisor: UExtra=%d", cfg.UExtra)
	}
	if cfg.BurstLookaheadDays < 0 {
		return nil, fmt.Errorf("advisor: BurstLookaheadDays=%d", cfg.BurstLookaheadDays)
	}
	if cfg.SolverWorkers < 0 {
		return nil, fmt.Errorf("advisor: SolverWorkers=%d", cfg.SolverWorkers)
	}
	if cfg.Share != nil && cfg.Share.R != cfg.R {
		return nil, fmt.Errorf("advisor: share model capacity %d != R %d", cfg.Share.R, cfg.R)
	}
	return &Advisor{cfg: cfg}, nil
}

// Plan computes a deployment plan from the tenants' activity logs over
// [0, horizon).
func (a *Advisor) Plan(logs []*workload.TenantLog, horizon sim.Time) (*Plan, error) {
	grid, err := epoch.NewGrid(a.cfg.Epoch, horizon)
	if err != nil {
		return nil, err
	}
	plan := &Plan{Config: a.cfg}

	// Exclusion pass.
	historyDays := int(horizon / sim.Day)
	var consolidated []*workload.TenantLog
	for _, tl := range logs {
		burst := BurstProfile{}
		if a.cfg.BurstLookaheadDays > 0 {
			burst = DetectBursts(tl.Activity, horizon)
		}
		switch {
		case tl.Tenant.DataGB > a.cfg.MaxDataGB:
			plan.Excluded = append(plan.Excluded, Exclusion{
				TenantID: tl.Tenant.ID,
				Reason:   fmt.Sprintf("oversized: %.0f GB > %.0f GB", tl.Tenant.DataGB, a.cfg.MaxDataGB),
				Nodes:    tl.Tenant.Nodes,
			})
		case tl.Activity.Ratio(horizon) > a.cfg.MaxActiveRatio:
			plan.Excluded = append(plan.Excluded, Exclusion{
				TenantID: tl.Tenant.ID,
				Reason:   fmt.Sprintf("always active: %.0f%% of horizon", 100*tl.Activity.Ratio(horizon)),
				Nodes:    tl.Tenant.Nodes,
			})
		case a.cfg.BurstLookaheadDays > 0 && burst.PredictsBurstWithin(historyDays, a.cfg.BurstLookaheadDays):
			plan.Excluded = append(plan.Excluded, Exclusion{
				TenantID: tl.Tenant.ID,
				Reason: fmt.Sprintf("regular bursts every ~%d days; next predicted on day %d",
					burst.PeriodDays, burst.NextBurstDay),
				Nodes: tl.Tenant.Nodes,
			})
		default:
			consolidated = append(consolidated, tl)
		}
	}

	// Build and solve the LIVBPwFC instance.
	prob := &grouping.Problem{D: grid.D, R: a.cfg.R, P: a.cfg.P}
	for _, tl := range consolidated {
		prob.Items = append(prob.Items, &grouping.Item{
			ID:    tl.Tenant.ID,
			Nodes: tl.Tenant.Nodes,
			Spans: grid.Quantize(tl.Activity),
		})
		plan.RequestedNodes += tl.Tenant.Nodes
	}
	if len(prob.Items) == 0 {
		return plan, nil
	}
	solve := func(p *grouping.Problem) (*grouping.Solution, error) {
		var s *grouping.Solution
		var serr error
		switch a.cfg.Algorithm {
		case FFD:
			s, serr = grouping.FFD(p)
		default:
			s, serr = grouping.Solver{Workers: a.cfg.SolverWorkers}.TwoStep(p)
		}
		if serr != nil {
			return nil, serr
		}
		if serr := grouping.Verify(p, s); serr != nil {
			return nil, fmt.Errorf("advisor: solver produced an invalid plan: %w", serr)
		}
		return s, nil
	}
	sol, err := solve(prob)
	if err != nil {
		return nil, err
	}
	if w := a.cfg.ShareWeights(); len(w) > 0 {
		// Sharing-aware pass: same items under the credited capacity test.
		// Greedy T_best is not monotone under constraint relaxation, so the
		// credited plan is adopted only when it is strictly cheaper; both
		// plans are verified against their own test.
		shared := &grouping.Problem{Items: prob.Items, D: prob.D, R: prob.R, P: prob.P, Share: w}
		ssol, err := solve(shared)
		if err != nil {
			return nil, err
		}
		if ssol.NodesUsed(prob.R) < sol.NodesUsed(prob.R) {
			sol = ssol
			plan.Shared = true
		}
	}
	plan.Algorithm = sol.Algorithm
	plan.SolveTime = sim.Duration(sol.Elapsed)

	for gi := range sol.Groups {
		g := &sol.Groups[gi]
		design, err := tdd.NewClusterDesign(a.cfg.R, g.MaxNodes, g.MaxNodes+a.cfg.UExtra)
		if err != nil {
			return nil, err
		}
		pg := PlannedGroup{
			ID:        fmt.Sprintf("TG-%04d", gi),
			Design:    design,
			TTP:       g.TTP,
			MaxActive: g.MaxActive,
		}
		for _, idx := range g.Items {
			pg.TenantIDs = append(pg.TenantIDs, prob.Items[idx].ID)
		}
		plan.Groups = append(plan.Groups, pg)
	}
	return plan, nil
}
