package advisor

import (
	"sort"

	"repro/internal/epoch"
	"repro/internal/sim"
)

// Tenants with regular bursts in activity — "there are usually bursts near
// the end of a fiscal year" (§5.1) — are identified from their history and
// excluded from consolidation *before* the next burst arrives: a burst
// inside a consolidated group would blow its TTP and force reactive scaling
// at the worst moment.

// BurstProfile is the periodic-burst analysis of one tenant's history.
type BurstProfile struct {
	// DailyRatio is the tenant's active-time fraction per day.
	DailyRatio []float64
	// BurstDays are the days whose activity exceeds BurstFactor × the
	// tenant's median active day.
	BurstDays []int
	// Periodic reports whether the burst days recur at a near-constant
	// interval.
	Periodic bool
	// PeriodDays is the recurrence interval when Periodic.
	PeriodDays int
	// NextBurstDay predicts the next burst (day index ≥ len(DailyRatio))
	// when Periodic.
	NextBurstDay int
}

// Burst detection parameters.
const (
	// BurstFactor: a day is a burst when its active ratio exceeds this
	// multiple of the tenant's median active day.
	BurstFactor = 3.0
	// burstMinRatio filters noise: a burst day must itself be at least this
	// active.
	burstMinRatio = 0.25
	// periodJitterDays tolerates scheduling slack between recurrences.
	periodJitterDays = 1
)

// DetectBursts analyzes a tenant's activity over [0, horizon) at one-day
// resolution.
func DetectBursts(act epoch.Activity, horizon sim.Time) BurstProfile {
	days := int(horizon / sim.Day)
	if days < 1 {
		return BurstProfile{}
	}
	p := BurstProfile{DailyRatio: make([]float64, days)}
	for d := 0; d < days; d++ {
		from := sim.Time(d) * sim.Day
		p.DailyRatio[d] = act.Clip(from, from+sim.Day).Total().Seconds() / sim.Day.Seconds()
	}
	// Median over active days only (weekends/holidays would otherwise drag
	// the baseline to zero and make every workday look like a burst).
	var active []float64
	for _, r := range p.DailyRatio {
		if r > 0 {
			active = append(active, r)
		}
	}
	if len(active) == 0 {
		return p
	}
	sort.Float64s(active)
	median := active[len(active)/2]
	for d, r := range p.DailyRatio {
		if r >= burstMinRatio && r > BurstFactor*median {
			p.BurstDays = append(p.BurstDays, d)
		}
	}
	// Periodicity: at least two bursts with near-equal spacing.
	if len(p.BurstDays) >= 2 {
		gaps := make([]int, 0, len(p.BurstDays)-1)
		for i := 1; i < len(p.BurstDays); i++ {
			gaps = append(gaps, p.BurstDays[i]-p.BurstDays[i-1])
		}
		period := gaps[0]
		regular := period > 0
		for _, g := range gaps[1:] {
			if g < period-periodJitterDays || g > period+periodJitterDays {
				regular = false
				break
			}
		}
		if regular {
			p.Periodic = true
			p.PeriodDays = period
			p.NextBurstDay = p.BurstDays[len(p.BurstDays)-1] + period
		}
	}
	return p
}

// PredictsBurstWithin reports whether the profile predicts a burst within
// the next windowDays after the history ends.
func (p BurstProfile) PredictsBurstWithin(historyDays, windowDays int) bool {
	if !p.Periodic {
		return false
	}
	next := p.NextBurstDay
	for next < historyDays { // roll forward if the "next" burst is stale
		next += p.PeriodDays
	}
	return next < historyDays+windowDays
}
