package advisor

import (
	"testing"

	"repro/internal/epoch"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestShareWeights: off → nil; on with an explicit model → that model's
// weights; on without a model → weights derived from the default catalog.
func TestShareWeights(t *testing.T) {
	cfg := DefaultConfig()
	if w := cfg.ShareWeights(); w != nil {
		t.Fatalf("sharing off produced weights %v", w)
	}
	cfg.Sharing = true
	cfg.Share = &queries.ShareModel{R: 3, W: []float64{0.4, 0.3}}
	if w := cfg.ShareWeights(); len(w) != 2 || w[0] != 0.4 || w[1] != 0.3 {
		t.Fatalf("explicit model weights = %v", w)
	}
	cfg.Share = nil
	w := cfg.ShareWeights()
	if len(w) == 0 {
		t.Fatal("derived model produced no weights")
	}
	for i, v := range w {
		if v <= 0 || v >= 1 {
			t.Fatalf("derived weight [%d]=%v outside (0,1)", i, v)
		}
	}
}

func TestNewRejectsShareModelMismatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sharing = true
	cfg.Share = &queries.ShareModel{R: 2, W: []float64{0.5}}
	if _, err := New(cfg); err == nil {
		t.Fatal("share model with R=2 accepted for R=3 advisor")
	}
}

// TestPlanSharingPacksDenser: two tenants overlapping 2h of a day fail the
// plain test at P=0.95/R=1 (TTP ≈ 0.917) but pass the credited one with
// weight 0.7 (≈ 0.975), so the sharing plan merges them into one group.
func TestPlanSharingPacksDenser(t *testing.T) {
	logs := []*workload.TenantLog{
		mkLog("s1", 4, epoch.Activity{{Start: 0, End: 2 * sim.Hour}}),
		mkLog("s2", 4, epoch.Activity{{Start: 0, End: 2 * sim.Hour}}),
	}
	cfg := DefaultConfig()
	cfg.R = 1
	cfg.P = 0.95
	plain, err := mustNew(t, cfg).Plan(logs, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Groups) != 2 || plain.Shared {
		t.Fatalf("plain: %d groups, Shared=%v", len(plain.Groups), plain.Shared)
	}
	cfg.Sharing = true
	cfg.Share = &queries.ShareModel{R: 1, W: []float64{0.7}}
	shared, err := mustNew(t, cfg).Plan(logs, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(shared.Groups) != 1 || !shared.Shared {
		t.Fatalf("shared: %d groups, Shared=%v", len(shared.Groups), shared.Shared)
	}
	if shared.NodesUsed() >= plain.NodesUsed() {
		t.Fatalf("sharing saved nothing: %d vs %d nodes", shared.NodesUsed(), plain.NodesUsed())
	}
}

// TestPlanSharingNeverCostsMore: the both-solve guard means turning Sharing
// on can only keep or reduce the node count, never increase it — greedy
// T_best alone would not guarantee that (see grouping/share_test.go).
func TestPlanSharingNeverCostsMore(t *testing.T) {
	logs := officeLogs(24, 4, 4)
	cfg := DefaultConfig()
	plain, err := mustNew(t, cfg).Plan(logs, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sharing = true
	shared, err := mustNew(t, cfg).Plan(logs, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if shared.NodesUsed() > plain.NodesUsed() {
		t.Fatalf("sharing plan costs more: %d vs %d nodes", shared.NodesUsed(), plain.NodesUsed())
	}
	if !shared.Shared && shared.NodesUsed() != plain.NodesUsed() {
		t.Fatal("Shared=false but node counts differ")
	}
}

func mustNew(t *testing.T, cfg Config) *Advisor {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
