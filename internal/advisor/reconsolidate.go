package advisor

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/epoch"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Thrifty's deployment is "static for days"; a (re)-consolidation process
// runs periodically because tenants register and de-register (§3c), and
// because elastic scaling leaves behind groups that no longer match their
// history (§5.1: "tenants in those tenant-groups will get added to a
// re-consolidation list ... together with new tenants, over-active tenants,
// and tenants in tenant-groups with de-registered tenants").
//
// Reconsolidation is deliberately incremental: groups that are unaffected —
// not flagged by the scaler, no departed members, and still satisfying the
// fuzzy-capacity constraint on fresh history — keep their exact placement,
// so their tenants' data never moves. Everyone else is pooled and re-grouped
// from scratch.

// ReconsolidationInput describes one cycle.
type ReconsolidationInput struct {
	// Previous is the currently deployed plan.
	Previous *Plan
	// Logs is the *current* tenant population with fresh activity history:
	// new tenants appear here, departed tenants do not.
	Logs []*workload.TenantLog
	// FlaggedGroups are group IDs the elastic scaler put on the
	// re-consolidation list.
	FlaggedGroups []string
}

// Group-decision reason codes: why a previous group was kept or repacked.
const (
	// ReasonUnflagged: nothing disturbed the group — it kept its placement.
	ReasonUnflagged = "unflagged"
	// ReasonFlagged: the elastic scaler (or the online control loop) put the
	// group on the re-consolidation list.
	ReasonFlagged = "flagged"
	// ReasonDepartedMember: at least one member de-registered this cycle.
	ReasonDepartedMember = "departed-member"
	// ReasonCapacityViolation: the group's fresh activity history violates
	// the fuzzy-capacity constraint (TTP < P).
	ReasonCapacityViolation = "capacity-violation"
)

// GroupDecision records the keep/repack verdict for one previous group, in
// plan order. The online control loop and the GET /v1/reconsolidation
// endpoint surface it so operators can see *why* a group was disturbed.
type GroupDecision struct {
	// Group is the previous plan's group ID.
	Group string `json:"group"`
	// Kept reports whether the group survived with its placement intact.
	Kept bool `json:"kept"`
	// Reason is one of the Reason* codes above: ReasonUnflagged for a kept
	// group, otherwise the first disturbance found (flagged, then departed
	// member, then capacity violation).
	Reason string `json:"reason"`
}

// ReconsolidationReport summarizes the cycle's churn and migration cost.
type ReconsolidationReport struct {
	// KeptGroups kept their placement; their tenants' data does not move.
	KeptGroups int `json:"kept_groups"`
	// RepackedTenants went through grouping again.
	RepackedTenants int `json:"repacked_tenants"`
	// NewTenants joined the service this cycle.
	NewTenants []string `json:"new_tenants,omitempty"`
	// Departed left the service this cycle.
	Departed []string `json:"departed,omitempty"`
	// MovedTenants ended up in a different group than before (new tenants
	// included).
	MovedTenants []string `json:"moved_tenants,omitempty"`
	// DataToMoveGB is the bulk-load volume the migration requires: each
	// moved tenant's data loaded onto its new group's R MPPDBs.
	DataToMoveGB float64 `json:"data_to_move_gb"`
	// MaxProvisionTime estimates the cycle's wall time: the slowest new
	// group's startup + parallel bulk load (groups provision concurrently).
	MaxProvisionTime time.Duration `json:"max_provision_time_ns"`
	// Decisions records the keep/repack verdict and reason for every
	// previous group, in plan order.
	Decisions []GroupDecision `json:"decisions"`
}

// Reconsolidate computes the next deployment plan from the previous one.
func (a *Advisor) Reconsolidate(in ReconsolidationInput, horizon sim.Time) (*Plan, *ReconsolidationReport, error) {
	if in.Previous == nil {
		return nil, nil, fmt.Errorf("advisor: reconsolidation without a previous plan")
	}
	grid, err := epoch.NewGrid(a.cfg.Epoch, horizon)
	if err != nil {
		return nil, nil, err
	}
	flagged := make(map[string]bool, len(in.FlaggedGroups))
	for _, g := range in.FlaggedGroups {
		flagged[g] = true
	}
	current := make(map[string]*workload.TenantLog, len(in.Logs))
	for _, tl := range in.Logs {
		current[tl.Tenant.ID] = tl
	}

	rep := &ReconsolidationReport{}
	prevGroupOf := make(map[string]string)
	prevMembers := make(map[string]bool)
	for _, g := range in.Previous.Groups {
		for _, id := range g.TenantIDs {
			prevGroupOf[id] = g.ID
			prevMembers[id] = true
			if _, here := current[id]; !here {
				rep.Departed = append(rep.Departed, id)
			}
		}
	}
	for _, e := range in.Previous.Excluded {
		prevMembers[e.TenantID] = true
		if _, here := current[e.TenantID]; !here {
			rep.Departed = append(rep.Departed, e.TenantID)
		}
	}
	for _, tl := range in.Logs {
		if !prevMembers[tl.Tenant.ID] {
			rep.NewTenants = append(rep.NewTenants, tl.Tenant.ID)
		}
	}
	sort.Strings(rep.NewTenants)
	sort.Strings(rep.Departed)

	// Decide which groups survive.
	next := &Plan{Config: a.cfg}
	var repackLogs []*workload.TenantLog
	for _, g := range in.Previous.Groups {
		keep := !flagged[g.ID]
		reason := ReasonUnflagged
		if !keep {
			reason = ReasonFlagged
		}
		if keep {
			// All members still present?
			for _, id := range g.TenantIDs {
				if _, here := current[id]; !here {
					keep = false
					reason = ReasonDepartedMember
					break
				}
			}
		}
		if keep {
			// Fresh-history feasibility check: if the group's recent
			// activity now violates the fuzzy capacity, repack it rather
			// than deploy a plan we already know is broken.
			cs := epoch.NewCountSet(grid.D)
			for _, id := range g.TenantIDs {
				cs.Add(grid.Quantize(current[id].Activity))
			}
			if cs.TTP(a.cfg.R) < a.cfg.P {
				keep = false
				reason = ReasonCapacityViolation
			} else {
				kept := g
				kept.TTP = cs.TTP(a.cfg.R)
				kept.MaxActive = cs.MaxCount()
				next.Groups = append(next.Groups, kept)
				rep.KeptGroups++
				for _, id := range g.TenantIDs {
					next.RequestedNodes += current[id].Tenant.Nodes
				}
			}
		}
		if !keep {
			for _, id := range g.TenantIDs {
				if tl, here := current[id]; here {
					repackLogs = append(repackLogs, tl)
				}
			}
		}
		rep.Decisions = append(rep.Decisions, GroupDecision{Group: g.ID, Kept: keep, Reason: reason})
	}
	// New tenants and previously excluded tenants re-enter the pool.
	for _, tl := range in.Logs {
		if !prevMembers[tl.Tenant.ID] {
			repackLogs = append(repackLogs, tl)
		}
	}
	for _, e := range in.Previous.Excluded {
		if tl, here := current[e.TenantID]; here {
			repackLogs = append(repackLogs, tl)
		}
	}
	rep.RepackedTenants = len(repackLogs)

	// Re-plan the pool (exclusion rules apply afresh).
	sub, err := a.Plan(repackLogs, horizon)
	if err != nil {
		return nil, nil, err
	}
	next.Excluded = sub.Excluded
	next.RequestedNodes += sub.RequestedNodes
	next.Algorithm = sub.Algorithm
	next.SolveTime = sub.SolveTime
	for i := range sub.Groups {
		g := sub.Groups[i]
		g.ID = fmt.Sprintf("TG-R%04d", i) // new-cycle namespace; avoids collisions
		next.Groups = append(next.Groups, g)

		// Migration accounting: members whose group changed must be bulk
		// loaded onto the new group's R MPPDBs.
		var groupGB float64
		for _, id := range g.TenantIDs {
			tl := current[id]
			groupGB += tl.Tenant.DataGB
			if prevGroupOf[id] != g.ID { // always true for the new namespace
				rep.MovedTenants = append(rep.MovedTenants, id)
				rep.DataToMoveGB += tl.Tenant.DataGB * float64(a.cfg.R)
			}
		}
		prov := cluster.StartupTime(g.Design.N1) +
			cluster.LoadTime(groupGB, g.Design.N1, true)
		if prov > rep.MaxProvisionTime {
			rep.MaxProvisionTime = prov
		}
	}
	sort.Strings(rep.MovedTenants)
	return next, rep, nil
}
