package advisor

import (
	"strings"
	"testing"

	"repro/internal/epoch"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// mkLog builds a synthetic tenant log with the given activity.
func mkLog(id string, nodes int, act epoch.Activity) *workload.TenantLog {
	return &workload.TenantLog{
		Tenant: &tenant.Tenant{
			ID: id, Nodes: nodes, DataGB: 100 * float64(nodes),
			Users: 1, Suite: queries.TPCH,
		},
		Activity: act,
	}
}

// officeLogs builds n tenants of the given size whose activities rotate
// through k disjoint office windows of a one-day horizon — highly
// consolidatable by construction.
func officeLogs(n, nodes, k int) []*workload.TenantLog {
	var out []*workload.TenantLog
	for i := 0; i < n; i++ {
		w := sim.Time(i%k) * 3 * sim.Hour
		act := epoch.Activity{
			{Start: w, End: w + 40*sim.Minute},
			{Start: w + 1*sim.Hour, End: w + 100*sim.Minute},
		}
		out = append(out, mkLog(sname(i), nodes, act))
	}
	return out
}

func sname(i int) string { return "T" + string(rune('A'+i/26)) + string(rune('a'+i%26)) }

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{R: 0, P: 0.9, Epoch: sim.Second},
		{R: 3, P: 0, Epoch: sim.Second},
		{R: 3, P: 1.5, Epoch: sim.Second},
		{R: 3, P: 0.9, Epoch: 0},
		{R: 3, P: 0.9, Epoch: sim.Second, Algorithm: "simulated-annealing"},
		{R: 3, P: 0.9, Epoch: sim.Second, UExtra: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestPlanConsolidates(t *testing.T) {
	a, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	logs := officeLogs(24, 4, 8)
	plan, err := a.Plan(logs, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if plan.RequestedNodes != 24*4 {
		t.Errorf("RequestedNodes = %d", plan.RequestedNodes)
	}
	if len(plan.Excluded) != 0 {
		t.Errorf("unexpected exclusions: %+v", plan.Excluded)
	}
	if plan.Effectiveness() <= 0 {
		t.Errorf("no consolidation: used %d of %d", plan.NodesUsed(), plan.RequestedNodes)
	}
	// Every tenant appears in exactly one group.
	seen := map[string]int{}
	for _, g := range plan.Groups {
		if g.Design.A != 3 {
			t.Errorf("group %s has A=%d, want R=3", g.ID, g.Design.A)
		}
		if g.Design.N1 != 4 {
			t.Errorf("group %s n₁=%d, want 4", g.ID, g.Design.N1)
		}
		if g.TTP < 0.999 {
			t.Errorf("group %s TTP %v < P", g.ID, g.TTP)
		}
		for _, id := range g.TenantIDs {
			seen[id]++
		}
	}
	for _, tl := range logs {
		if seen[tl.Tenant.ID] != 1 {
			t.Errorf("tenant %s appears %d times", tl.Tenant.ID, seen[tl.Tenant.ID])
		}
	}
	// Group lookup.
	if g, ok := plan.Group(logs[0].Tenant.ID); !ok || g == nil {
		t.Error("Group lookup failed")
	}
	if _, ok := plan.Group("nope"); ok {
		t.Error("Group found a ghost")
	}
	if plan.MeanGroupSize() <= 1 {
		t.Errorf("mean group size %v", plan.MeanGroupSize())
	}
}

func TestPlanExcludesAlwaysActive(t *testing.T) {
	a, _ := New(DefaultConfig())
	logs := officeLogs(6, 2, 6)
	logs = append(logs, mkLog("hog", 2, epoch.Activity{{Start: 0, End: sim.Day}}))
	plan, err := a.Plan(logs, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Excluded) != 1 || plan.Excluded[0].TenantID != "hog" {
		t.Fatalf("Excluded = %+v", plan.Excluded)
	}
	if !strings.Contains(plan.Excluded[0].Reason, "always active") {
		t.Errorf("reason = %q", plan.Excluded[0].Reason)
	}
	if _, ok := plan.Group("hog"); ok {
		t.Error("excluded tenant was still grouped")
	}
	// Requested nodes counts only consolidated tenants.
	if plan.RequestedNodes != 12 {
		t.Errorf("RequestedNodes = %d, want 12", plan.RequestedNodes)
	}
}

func TestPlanExcludesOversized(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxDataGB = 1000
	a, _ := New(cfg)
	logs := officeLogs(4, 2, 4)
	logs = append(logs, mkLog("whale", 16, epoch.Activity{{Start: 0, End: sim.Hour}}))
	plan, err := a.Plan(logs, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Excluded) != 1 || plan.Excluded[0].TenantID != "whale" {
		t.Fatalf("Excluded = %+v", plan.Excluded)
	}
	if !strings.Contains(plan.Excluded[0].Reason, "oversized") {
		t.Errorf("reason = %q", plan.Excluded[0].Reason)
	}
}

func TestPlanFFD(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algorithm = FFD
	a, _ := New(cfg)
	plan, err := a.Plan(officeLogs(12, 2, 6), sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != "FFD" {
		t.Errorf("algorithm = %q", plan.Algorithm)
	}
}

func TestPlanUExtra(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UExtra = 2
	a, _ := New(cfg)
	plan, err := a.Plan(officeLogs(6, 4, 6), sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range plan.Groups {
		if g.Design.U != g.Design.N1+2 {
			t.Errorf("group %s U=%d, want n₁+2=%d", g.ID, g.Design.U, g.Design.N1+2)
		}
	}
}

func TestPlanEmpty(t *testing.T) {
	a, _ := New(DefaultConfig())
	plan, err := a.Plan(nil, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Groups) != 0 || plan.NodesUsed() != 0 || plan.Effectiveness() != 0 {
		t.Errorf("empty plan wrong: %+v", plan)
	}
	if plan.MeanGroupSize() != 0 {
		t.Error("mean group size of empty plan")
	}
}

func TestPlanBadHorizon(t *testing.T) {
	a, _ := New(DefaultConfig())
	if _, err := a.Plan(nil, 0); err == nil {
		t.Error("zero horizon accepted")
	}
}
