package admission

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/monitor"
	"repro/internal/mppdb"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tenant"
)

// Brownout levels. The controller progressively sheds the least protected
// traffic first: over-contract tenants lose their burst allowance at
// LevelThrottleHot, best-effort traffic is dropped at LevelShedBestEffort.
// Contract-abiding SLA traffic is never shed at any level.
const (
	// LevelNormal: every tenant gets its full contract.
	LevelNormal = 0
	// LevelThrottleHot: the group nears its guarantee (RT-TTP under the
	// enter threshold, or instances run degraded/mid-recovery); tenants
	// that drained past the hot watermark — sustained submission above
	// their contracted rate — are rejected until their bucket recovers.
	LevelThrottleHot = 1
	// LevelShedBestEffort: the guarantee is violated; best-effort traffic
	// is shed too and the group goes shedding-only for stats readers.
	LevelShedBestEffort = 2
)

// Shed reasons carried by ShedError and the per-reason shed counters.
const (
	// ShedQueueFull: the bounded admission queue is at capacity.
	ShedQueueFull = "queue_full"
	// ShedDeadline: the query could not start soon enough to meet its SLA
	// deadline, so running it would be wasted work.
	ShedDeadline = "deadline"
	// ShedBestEffort: brownout dropped best-effort traffic.
	ShedBestEffort = "best_effort"
)

// ContractExceededError is the typed 429: the tenant ran past its
// contracted arrival process. RetryAfter is the virtual time until the
// tenant's bucket readmits it.
type ContractExceededError struct {
	Group      string
	Tenant     string
	RetryAfter sim.Time
	// Brownout reports whether the rejection was tightened by an active
	// brownout (burst allowance withdrawn), not the contract alone.
	Brownout bool
}

func (e *ContractExceededError) Error() string {
	why := "contract exceeded"
	if e.Brownout {
		why = "contract exceeded (brownout)"
	}
	return fmt.Sprintf("admission: tenant %s on group %s: %s; retry after %v",
		e.Tenant, e.Group, why, e.RetryAfter)
}

// ShedError is the typed 503: the query was shed without being run —
// queue full, unmeetable deadline, or best-effort traffic during brownout.
type ShedError struct {
	Group      string
	Tenant     string
	Reason     string
	RetryAfter sim.Time
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admission: tenant %s on group %s: query shed (%s); retry after %v",
		e.Tenant, e.Group, e.Reason, e.RetryAfter)
}

// Config parameterizes a group's admission controller.
type Config struct {
	// Contracts maps tenant ID to its contracted arrival process. Tenants
	// absent from the map get Default. Derive from the advisor's workload
	// model with ContractsFromLogs.
	Contracts map[string]Contract
	// Default applies to tenants without an explicit contract. The zero
	// value is unlimited (counted, never throttled).
	Default Contract
	// Headroom is recorded for operators (the factor contracts were scaled
	// by at derivation); it is not applied again here. <= 0 defaults to 2.
	Headroom float64
	// MaxQueue bounds how many submits may wait in the group's admission
	// queue for a retry slot (default 32).
	MaxQueue int
	// DeadlineFactor sheds a queued query whose projected start delay
	// exceeds (DeadlineFactor-1) x its SLA target (default 1.25: a query
	// allowed to wait at most a quarter of its target before starting is
	// shed immediately instead of wasting group capacity).
	DeadlineFactor float64
	// TickInterval is the brownout controller's evaluation cadence on the
	// group's virtual clock (default 30 s).
	TickInterval time.Duration
	// BrownoutEnter is the RT-TTP threshold below which the group enters
	// LevelThrottleHot. 0 defaults to P + (1-P)/2 — halfway into the
	// remaining headroom above the guarantee.
	BrownoutEnter float64
	// HotFraction is the fraction of a tenant's burst it must retain to be
	// admitted during brownout (default 0.5): a tenant that drained below
	// HotFraction x Burst has been submitting above its sustained rate and
	// is rejected first.
	HotFraction float64
	// StrikeLimit is how many consecutive rejections a tenant may accrue
	// before the policer turns punitive regardless of brownout level: each
	// further attempt restarts its refill from zero, locking an open-loop
	// flooder out until it actually backs off. A client that honors
	// Retry-After never accumulates strikes (default 8).
	StrikeLimit int
}

// DefaultConfig returns the production defaults described above.
func DefaultConfig() Config {
	return Config{
		Headroom:       2,
		MaxQueue:       32,
		DeadlineFactor: 1.25,
		TickInterval:   30 * time.Second,
		HotFraction:    0.5,
		StrikeLimit:    8,
	}
}

func (c *Config) normalize() {
	if c.Headroom <= 0 {
		c.Headroom = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 32
	}
	if c.DeadlineFactor <= 1 {
		c.DeadlineFactor = 1.25
	}
	if c.TickInterval <= 0 {
		c.TickInterval = 30 * time.Second
	}
	if c.HotFraction <= 0 || c.HotFraction >= 1 {
		c.HotFraction = 0.5
	}
	if c.StrikeLimit <= 0 {
		c.StrikeLimit = 8
	}
}

// tenantState is one member's bucket plus lock-free mirrors for readers.
// The bucket itself is only touched under the group's clock domain; the
// atomics let /v1/admission and /v1/slo read without taking it.
type tenantState struct {
	tenant    string
	bucket    *bucket // nil for unlimited contracts
	contract  Contract
	strikes   int           // consecutive rejections; domain-serialized
	tokens    atomic.Uint64 // Float64bits mirror of bucket.tokens
	admitted  atomic.Int64
	throttled atomic.Int64
	shed      atomic.Int64
}

func (ts *tenantState) mirror() {
	if ts.bucket != nil {
		ts.tokens.Store(math.Float64bits(ts.bucket.tokens))
	}
}

// TenantStat is one tenant's admission accounting, lock-free readable.
type TenantStat struct {
	Tenant    string  `json:"tenant"`
	Rate      float64 `json:"rate_qps"`
	Burst     float64 `json:"burst"`
	Tokens    float64 `json:"tokens"`
	Admitted  int64   `json:"admitted"`
	Throttled int64   `json:"throttled"`
	Shed      int64   `json:"shed"`
}

// Snapshot is a group's full admission state for inspection endpoints.
type Snapshot struct {
	Group        string       `json:"group"`
	Level        int          `json:"level"`
	QueueDepth   int          `json:"queue_depth"`
	SheddingOnly bool         `json:"shedding_only"`
	Tenants      []TenantStat `json:"tenants"`
}

// Controller is one tenant-group's admission controller. Admit, EnterQueue,
// and LeaveQueue must run under the group's clock domain (they use the
// engine clock and mutate buckets); the inspection methods are lock-free
// and safe from any goroutine.
type Controller struct {
	eng     *sim.Engine
	group   string
	p       float64
	enter   float64
	cfg     Config
	mon     *monitor.GroupMonitor
	rec     *recovery.Controller
	insts   []*mppdb.Instance
	states  map[string]*tenantState // read-only after New
	order   []string                // sorted member IDs
	// Interned fast path (optional, via AdoptInterner): member states
	// indexed by the group's dense tenant refs for AdmitRef.
	in    *tenant.Interner
	byRef []*tenantState
	level   atomic.Int32
	waiting atomic.Int32
	started bool

	onLevelChange func(int)
	onTick        func()

	tel        *telemetry.Hub
	mAdmitted  *telemetry.Counter
	mThrottled *telemetry.Counter
	mShed      map[string]*telemetry.Counter // by reason
	gLevel     *telemetry.Gauge
	gQueue     *telemetry.Gauge
}

// New builds the controller for one group. members are the group's tenant
// IDs; mon/rec/insts feed the brownout controller (rec may be nil).
func New(eng *sim.Engine, group string, p float64, members []string,
	insts []*mppdb.Instance, mon *monitor.GroupMonitor, rec *recovery.Controller,
	cfg Config) (*Controller, error) {
	if eng == nil {
		return nil, fmt.Errorf("admission: nil engine")
	}
	if mon == nil {
		return nil, fmt.Errorf("admission: nil monitor for group %s", group)
	}
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("admission: guarantee P=%v out of (0,1)", p)
	}
	cfg.normalize()
	enter := cfg.BrownoutEnter
	if enter <= 0 {
		enter = p + (1-p)/2
	}
	if enter <= p || enter >= 1 {
		return nil, fmt.Errorf("admission: brownout-enter %v must lie in (P=%v, 1)", enter, p)
	}
	c := &Controller{
		eng:    eng,
		group:  group,
		p:      p,
		enter:  enter,
		cfg:    cfg,
		mon:    mon,
		rec:    rec,
		insts:  insts,
		states: make(map[string]*tenantState, len(members)),
	}
	for _, id := range members {
		ct, ok := cfg.Contracts[id]
		if !ok {
			ct = cfg.Default
		}
		ts := &tenantState{tenant: id, contract: ct}
		if !ct.Unlimited() {
			ts.bucket = newBucket(ct)
			ts.mirror()
		}
		c.states[id] = ts
		c.order = append(c.order, id)
	}
	sort.Strings(c.order)
	return c, nil
}

// Group returns the controller's tenant-group ID.
func (c *Controller) Group() string { return c.group }

// AdoptInterner indexes the member states by the group interner's dense refs
// so the submit hot path can use AdmitRef instead of the string map. Call
// before the controller serves traffic (master wires it at deploy).
func (c *Controller) AdoptInterner(in *tenant.Interner) {
	c.in = in
	c.byRef = nil
	for id, ts := range c.states {
		ref := in.Intern(id)
		for int(ref) >= len(c.byRef) {
			c.byRef = append(c.byRef, nil)
		}
		c.byRef[ref] = ts
	}
}

// SetTelemetry wires the hub; call before Start.
func (c *Controller) SetTelemetry(h *telemetry.Hub) {
	if h == nil {
		return
	}
	c.tel = h
	c.mAdmitted = h.Registry.Counter("thrifty_admission_admitted_total", "group", c.group)
	c.mThrottled = h.Registry.Counter("thrifty_admission_throttled_total", "group", c.group)
	c.mShed = map[string]*telemetry.Counter{
		ShedQueueFull:  h.Registry.Counter("thrifty_admission_shed_total", "group", c.group, "reason", ShedQueueFull),
		ShedDeadline:   h.Registry.Counter("thrifty_admission_shed_total", "group", c.group, "reason", ShedDeadline),
		ShedBestEffort: h.Registry.Counter("thrifty_admission_shed_total", "group", c.group, "reason", ShedBestEffort),
	}
	c.gLevel = h.Registry.Gauge("thrifty_admission_brownout_level", "group", c.group)
	c.gQueue = h.Registry.Gauge("thrifty_admission_queue_depth", "group", c.group)
}

// OnLevelChange registers a callback fired (under the clock domain) when
// the brownout level changes. Call before Start.
func (c *Controller) OnLevelChange(fn func(level int)) { c.onLevelChange = fn }

// OnTick registers a callback fired (under the clock domain) after every
// brownout evaluation. Call before Start.
func (c *Controller) OnTick(fn func()) { c.onTick = fn }

// Start arms the periodic brownout evaluation on the group's virtual
// clock. Must be called under the clock domain (master calls it during
// deploy). Idempotent.
func (c *Controller) Start() {
	if c.started {
		return
	}
	c.started = true
	c.scheduleTick()
}

func (c *Controller) scheduleTick() {
	c.eng.After(c.cfg.TickInterval, func(sim.Time) {
		c.tick()
		c.scheduleTick()
	})
}

// tick re-evaluates the brownout level from the live RT-TTP estimate, the
// group's instantaneous pressure (every MPPDB claimed by an active tenant —
// the next uncovered arrival shares), and its recovery state.
func (c *Controller) tick() {
	rt := c.mon.RTTTP()
	degraded := 0
	for _, inst := range c.insts {
		if inst.FailedNodes() > 0 || inst.State() != mppdb.Ready {
			degraded++
		}
	}
	pressure := false
	if len(c.insts) > 0 {
		if c.insts[0].Sharing() {
			// Shared-work execution collapses same-class queries into one
			// processor-sharing participant, so raw active-tenant residency
			// overstates load: read the effective (batch-collapsed)
			// concurrency across the group instead, and throttle only when
			// the merged participants claim every MPPDB.
			eff := 0
			for _, inst := range c.insts {
				eff += inst.EffectiveRunning()
			}
			pressure = eff >= len(c.insts)
		} else {
			pressure = c.mon.ActiveTenants() >= len(c.insts)
		}
	}
	level := LevelNormal
	switch {
	case rt < c.p:
		level = LevelShedBestEffort
	case rt < c.enter || pressure || degraded > 0 || (c.rec != nil && c.rec.InProgress() > 0):
		level = LevelThrottleHot
	}
	prev := int(c.level.Swap(int32(level)))
	if level != prev {
		if c.gLevel != nil {
			c.gLevel.Set(float64(level))
		}
		if c.tel != nil {
			typ := telemetry.EventBrownoutEntered
			if level == LevelNormal {
				typ = telemetry.EventBrownoutCleared
			}
			c.tel.Events.Publish(telemetry.Event{
				Type:   typ,
				Group:  c.group,
				Value:  float64(level),
				Detail: fmt.Sprintf("rt_ttp=%.6f degraded=%d", rt, degraded),
			})
		}
		if c.onLevelChange != nil {
			c.onLevelChange(level)
		}
	}
	if c.onTick != nil {
		c.onTick()
	}
}

// Level returns the current brownout level. Lock-free.
func (c *Controller) Level() int { return int(c.level.Load()) }

// QueueDepth returns how many submits wait in the admission queue.
// Lock-free.
func (c *Controller) QueueDepth() int { return int(c.waiting.Load()) }

// Admit decides whether one query from tenant may enter the group now.
// Must run under the group's clock domain. A nil return admits; otherwise
// the error is a *ContractExceededError (429) or *ShedError (503).
func (c *Controller) Admit(tenant string, sla sim.Time, bestEffort bool) error {
	return c.admit(c.states[tenant], tenant, sla, bestEffort)
}

// AdmitRef is Admit over an interned tenant ref (requires AdoptInterner):
// the member state resolves with one slice index instead of a string hash.
func (c *Controller) AdmitRef(ref tenant.Ref, sla sim.Time, bestEffort bool) error {
	var ts *tenantState
	if ref >= 0 && int(ref) < len(c.byRef) {
		ts = c.byRef[ref]
	}
	name := ""
	if ts != nil {
		name = ts.tenant
	} else if c.in != nil {
		name = c.in.ID(ref)
	}
	return c.admit(ts, name, sla, bestEffort)
}

func (c *Controller) admit(ts *tenantState, tenant string, sla sim.Time, bestEffort bool) error {
	level := int(c.level.Load())
	if bestEffort && level >= LevelShedBestEffort {
		if ts != nil {
			ts.shed.Add(1)
		}
		c.countShed(tenant, ShedBestEffort, "brownout sheds best-effort traffic")
		return &ShedError{
			Group: c.group, Tenant: tenant, Reason: ShedBestEffort,
			RetryAfter: sim.Duration(c.cfg.TickInterval),
		}
	}
	if ts == nil || ts.bucket == nil {
		// Unknown or unlimited tenant: admit (the router enforces
		// membership; unlimited contracts are counted only).
		if ts != nil {
			ts.admitted.Add(1)
		}
		if c.mAdmitted != nil {
			c.mAdmitted.Inc()
		}
		return nil
	}
	// During brownout a tenant must hold HotFraction of its burst in
	// reserve: only tenants that sustained submission above their
	// contracted rate have drained below that watermark, so they are
	// rejected first while contract-abiding tenants pass untouched.
	need := 1.0
	if level >= LevelThrottleHot {
		if hot := c.cfg.HotFraction * ts.contract.Burst; hot+1 > need {
			need = hot + 1
		}
	}
	now := c.eng.Now()
	ok, retryAfter := ts.bucket.take(now, need)
	if ok {
		ts.strikes = 0
	} else {
		ts.strikes++
		if level >= LevelThrottleHot || ts.strikes >= c.cfg.StrikeLimit {
			// Punitive policing: a tenant that keeps submitting while
			// rejected — brownout in effect, or StrikeLimit consecutive
			// denials with Retry-After ignored — restarts its refill from
			// zero, so only actually backing off readmits it.
			ts.bucket.punish()
			retryAfter = ts.bucket.eta(need)
		}
	}
	ts.mirror()
	if !ok {
		ts.throttled.Add(1)
		if c.mThrottled != nil {
			c.mThrottled.Inc()
		}
		if c.tel != nil {
			c.tel.Events.Publish(telemetry.Event{
				Type:   telemetry.EventContractExceeded,
				Group:  c.group,
				Tenant: tenant,
				Value:  retryAfter.Seconds(),
				Detail: fmt.Sprintf("level=%d %s", level, ts.contract),
			})
		}
		return &ContractExceededError{
			Group: c.group, Tenant: tenant,
			RetryAfter: retryAfter, Brownout: level >= LevelThrottleHot,
		}
	}
	ts.admitted.Add(1)
	if c.mAdmitted != nil {
		c.mAdmitted.Inc()
	}
	return nil
}

// EnterQueue claims a slot in the bounded admission queue for a submit
// whose first attempt failed transiently and will retry after delay.
// Must run under the group's clock domain. It sheds immediately — typed
// *ShedError — when the queue is full or the projected start delay alone
// would blow the query's SLA deadline (no wasted work). A nil return means
// the slot is held until LeaveQueue.
func (c *Controller) EnterQueue(tenant string, sla, delay sim.Time) error {
	if sla > 0 {
		slack := sim.Time(float64(sla) * (c.cfg.DeadlineFactor - 1))
		if delay > slack {
			c.shedTenant(tenant)
			c.countShed(tenant, ShedDeadline,
				fmt.Sprintf("start delay %v exceeds deadline slack %v", delay, slack))
			return &ShedError{
				Group: c.group, Tenant: tenant, Reason: ShedDeadline,
				RetryAfter: delay,
			}
		}
	}
	if int(c.waiting.Load()) >= c.cfg.MaxQueue {
		c.shedTenant(tenant)
		c.countShed(tenant, ShedQueueFull,
			fmt.Sprintf("admission queue at capacity %d", c.cfg.MaxQueue))
		return &ShedError{
			Group: c.group, Tenant: tenant, Reason: ShedQueueFull,
			RetryAfter: delay,
		}
	}
	d := c.waiting.Add(1)
	if c.gQueue != nil {
		c.gQueue.Set(float64(d))
	}
	return nil
}

// LeaveQueue releases a slot claimed by EnterQueue. Must run under the
// group's clock domain.
func (c *Controller) LeaveQueue() {
	d := c.waiting.Add(-1)
	if c.gQueue != nil {
		c.gQueue.Set(float64(d))
	}
}

func (c *Controller) shedTenant(tenant string) {
	if ts := c.states[tenant]; ts != nil {
		ts.shed.Add(1)
	}
}

func (c *Controller) countShed(tenant, reason, detail string) {
	if m := c.mShed[reason]; m != nil {
		m.Inc()
	}
	if c.tel != nil {
		c.tel.Events.Publish(telemetry.Event{
			Type:   telemetry.EventQueryShed,
			Group:  c.group,
			Tenant: tenant,
			Detail: reason + ": " + detail,
		})
	}
}

// TenantStats returns every member's admission accounting, sorted by
// tenant ID. Lock-free.
func (c *Controller) TenantStats() []TenantStat {
	out := make([]TenantStat, 0, len(c.order))
	for _, id := range c.order {
		ts := c.states[id]
		st := TenantStat{
			Tenant:    id,
			Rate:      ts.contract.Rate,
			Burst:     ts.contract.Burst,
			Admitted:  ts.admitted.Load(),
			Throttled: ts.throttled.Load(),
			Shed:      ts.shed.Load(),
		}
		if ts.bucket != nil {
			st.Tokens = math.Float64frombits(ts.tokens.Load())
		}
		out = append(out, st)
	}
	return out
}

// Snapshot returns the group's full admission state. Lock-free.
func (c *Controller) Snapshot() Snapshot {
	level := c.Level()
	return Snapshot{
		Group:        c.group,
		Level:        level,
		QueueDepth:   c.QueueDepth(),
		SheddingOnly: level >= LevelShedBestEffort,
		Tenants:      c.TenantStats(),
	}
}
