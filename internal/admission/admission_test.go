package admission

import (
	"errors"
	"testing"
	"time"

	"repro/internal/epoch"
	"repro/internal/monitor"
	"repro/internal/mppdb"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func TestContractFromLog(t *testing.T) {
	// A nil log gets the floors, scaled by headroom (0 defaults to 2).
	c := ContractFromLog(nil, 0)
	if c.Rate != 2*MinRate || c.Burst != 2*MinBurst {
		t.Fatalf("nil log contract %v", c)
	}

	// 10 events inside one monitor epoch over 100 s of activity: busy rate
	// 0.1 q/s, burst 10.
	tl := &workload.TenantLog{
		Sessions: []workload.SessionRef{{
			Start: 0,
			Log: &workload.SessionLog{Events: func() []workload.SessionEvent {
				evs := make([]workload.SessionEvent, 10)
				for i := range evs {
					evs[i] = workload.SessionEvent{Offset: sim.Time(i) * sim.Second, ClassID: "q", Duration: sim.Second}
				}
				return evs
			}()},
		}},
		Activity: epoch.Activity{{Start: 0, End: 100 * sim.Second}},
	}
	c = ContractFromLog(tl, 1)
	if c.Rate != 0.1 || c.Burst != 10 {
		t.Fatalf("derived contract %v, want rate=0.1 burst=10", c)
	}
	if c2 := ContractFromLog(tl, 2); c2.Rate != 0.2 || c2.Burst != 20 {
		t.Fatalf("headroom-2 contract %v", c2)
	}
	if c2 := ContractFromLog(tl, 1); c2 != c {
		t.Fatalf("derivation not deterministic: %v vs %v", c, c2)
	}

	// A sparse log hits both floors: one event over an hour of activity.
	sparse := &workload.TenantLog{
		Sessions: []workload.SessionRef{{
			Log: &workload.SessionLog{Events: []workload.SessionEvent{{ClassID: "q", Duration: sim.Second}}},
		}},
		Activity: epoch.Activity{{Start: 0, End: sim.Hour}},
	}
	c = ContractFromLog(sparse, 1)
	if c.Rate != MinRate || c.Burst != MinBurst {
		t.Fatalf("sparse contract %v, want floors", c)
	}
}

func TestBucket(t *testing.T) {
	b := newBucket(Contract{Rate: 1, Burst: 4})
	for i := 0; i < 4; i++ {
		if ok, _ := b.take(0, 1); !ok {
			t.Fatalf("burst take %d denied", i)
		}
	}
	ok, retry := b.take(0, 1)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry < sim.Second {
		t.Fatalf("retry-after %v < 1s", retry)
	}
	// Two virtual seconds refill two tokens.
	if ok, _ := b.take(2*sim.Second, 1); !ok {
		t.Fatal("refilled bucket denied")
	}
	b.punish()
	if b.tokens != 0 {
		t.Fatalf("punished bucket holds %v tokens", b.tokens)
	}
	if eta := b.eta(1); eta != sim.Second {
		t.Fatalf("eta from empty %v, want 1s", eta)
	}
}

// testController builds a controller over a live monitor and insts Ready
// instances.
func testController(t *testing.T, eng *sim.Engine, insts int, cfg Config) (*Controller, *monitor.GroupMonitor) {
	t.Helper()
	mon, err := monitor.NewGroup(eng, "g0", 1, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	dbs := make([]*mppdb.Instance, insts)
	for i := range dbs {
		dbs[i] = mppdb.New(eng, "i", 4)
	}
	c, err := New(eng, "g0", 0.999, []string{"A", "B"}, dbs, mon, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, mon
}

func TestAdmitContractEnforcement(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Contracts = map[string]Contract{"A": {Rate: 1, Burst: 4}}
	c, _ := testController(t, eng, 2, cfg)

	// A's burst admits, then the typed 429 with a sane Retry-After.
	for i := 0; i < 4; i++ {
		if err := c.Admit("A", 0, false); err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
	}
	err := c.Admit("A", 0, false)
	var ce *ContractExceededError
	if !errors.As(err, &ce) {
		t.Fatalf("want ContractExceededError, got %v", err)
	}
	if ce.RetryAfter < sim.Second || ce.Brownout {
		t.Fatalf("429 %+v", ce)
	}

	// B has no contract and the zero Default is unlimited.
	for i := 0; i < 100; i++ {
		if err := c.Admit("B", 0, false); err != nil {
			t.Fatalf("unlimited tenant throttled: %v", err)
		}
	}

	st := c.TenantStats()
	if len(st) != 2 || st[0].Tenant != "A" || st[1].Tenant != "B" {
		t.Fatalf("stats %+v", st)
	}
	if st[0].Admitted != 4 || st[0].Throttled != 1 || st[1].Admitted != 100 {
		t.Fatalf("stats %+v", st)
	}

	// Honoring Retry-After readmits.
	eng.Run(eng.Now().Add(time.Duration(ce.RetryAfter)))
	if err := c.Admit("A", 0, false); err != nil {
		t.Fatalf("after backoff: %v", err)
	}
}

func TestAdmitStrikePolicing(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Contracts = map[string]Contract{"A": {Rate: 1, Burst: 4}}
	cfg.StrikeLimit = 3
	c, _ := testController(t, eng, 2, cfg)

	for i := 0; i < 4; i++ {
		if err := c.Admit("A", 0, false); err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
	}
	// An open loop at 5 q/s against a 1 q/s contract: without the punitive
	// policer the bucket would still admit one query per second sustained;
	// with it, the flooder accrues StrikeLimit consecutive denials and then
	// every further attempt restarts its refill from zero.
	admitted := 0
	for i := 0; i < 50; i++ {
		eng.Run(eng.Now().Add(200 * time.Millisecond))
		if c.Admit("A", 0, false) == nil {
			admitted++
		}
	}
	if admitted != 0 {
		t.Fatalf("flooder admitted %d times mid-storm", admitted)
	}
	// Actually backing off (a full token's worth of idle time) readmits.
	eng.Run(eng.Now().Add(time.Second))
	if err := c.Admit("A", 0, false); err != nil {
		t.Fatalf("after genuine backoff: %v", err)
	}
}

func TestBrownoutTransitions(t *testing.T) {
	eng := sim.NewEngine()
	hub := telemetry.NewHub(eng, 0.999)
	cfg := DefaultConfig()
	cfg.Contracts = map[string]Contract{"A": {Rate: 1, Burst: 4}, "B": {Rate: 1, Burst: 4}}
	cfg.TickInterval = time.Second
	c, mon := testController(t, eng, 1, cfg)
	c.SetTelemetry(hub)
	var levels []int
	c.OnLevelChange(func(l int) { levels = append(levels, l) })
	c.Start()

	eng.Run(2 * sim.Second)
	if c.Level() != LevelNormal {
		t.Fatalf("idle level %d", c.Level())
	}

	// One active tenant claims the single instance: instantaneous pressure
	// lifts the group to LevelThrottleHot at the next tick.
	mon.QueryStarted("A")
	eng.Run(4 * sim.Second)
	if c.Level() != LevelThrottleHot {
		t.Fatalf("level under pressure %d", c.Level())
	}
	// Brownout withdraws the burst allowance: A holds 4 tokens but must
	// retain HotFraction x Burst = 2 in reserve, so the third take denies
	// and the policer drains the bucket.
	if err := c.Admit("A", 0, false); err != nil {
		t.Fatalf("hot admit 1: %v", err)
	}
	if err := c.Admit("A", 0, false); err != nil {
		t.Fatalf("hot admit 2: %v", err)
	}
	err := c.Admit("A", 0, false)
	var ce *ContractExceededError
	if !errors.As(err, &ce) || !ce.Brownout {
		t.Fatalf("want brownout 429, got %v", err)
	}
	if st := c.TenantStats(); st[0].Tokens != 0 {
		t.Fatalf("hot tenant not policed: %+v", st[0])
	}

	// Releasing the pressure clears the brownout.
	mon.QueryFinished(monitor.QueryRecord{Tenant: "A", Submit: eng.Now() - sim.Second, Finish: eng.Now(), SLATarget: 2 * sim.Second})
	eng.Run(6 * sim.Second)
	if c.Level() != LevelNormal {
		t.Fatalf("level after release %d", c.Level())
	}

	// Two tenants over-active against R=1 burn the RT-TTP below P: the
	// group goes to LevelShedBestEffort and best-effort traffic is shed.
	mon.QueryStarted("A")
	mon.QueryStarted("B")
	eng.Run(60 * sim.Second)
	if c.Level() != LevelShedBestEffort {
		t.Fatalf("level under violation %d (rt %v)", c.Level(), mon.RTTTP())
	}
	err = c.Admit("B", 0, true)
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ShedBestEffort {
		t.Fatalf("want best-effort shed, got %v", err)
	}
	// SLA traffic from a contract-abiding tenant still passes.
	if err := c.Admit("B", sim.Minute, false); err != nil {
		t.Fatalf("SLA traffic shed during brownout: %v", err)
	}

	if len(levels) < 3 {
		t.Fatalf("level transitions %v", levels)
	}
	entered, cleared := 0, 0
	for _, ev := range hub.Events.Recent(0) {
		switch ev.Type {
		case telemetry.EventBrownoutEntered:
			entered++
		case telemetry.EventBrownoutCleared:
			cleared++
		}
	}
	if entered < 2 || cleared < 1 {
		t.Fatalf("brownout events: %d entered, %d cleared", entered, cleared)
	}
	if snap := c.Snapshot(); !snap.SheddingOnly || snap.Level != LevelShedBestEffort {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestQueueBounds(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.MaxQueue = 2
	c, _ := testController(t, eng, 2, cfg)

	// A delay that alone blows the SLA deadline sheds immediately: slack is
	// (DeadlineFactor-1) x SLA = 25 s here.
	err := c.EnterQueue("A", 100*sim.Second, 30*sim.Second)
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ShedDeadline {
		t.Fatalf("want deadline shed, got %v", err)
	}

	if err := c.EnterQueue("A", 0, sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.EnterQueue("B", 0, sim.Second); err != nil {
		t.Fatal(err)
	}
	err = c.EnterQueue("A", 0, sim.Second)
	if !errors.As(err, &se) || se.Reason != ShedQueueFull {
		t.Fatalf("want queue-full shed, got %v", err)
	}
	if c.QueueDepth() != 2 {
		t.Fatalf("queue depth %d", c.QueueDepth())
	}
	c.LeaveQueue()
	c.LeaveQueue()
	if c.QueueDepth() != 0 {
		t.Fatalf("queue depth after leave %d", c.QueueDepth())
	}
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine()
	mon, err := monitor.NewGroup(eng, "g", 1, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if _, err := New(nil, "g", 0.999, nil, nil, mon, nil, cfg); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := New(eng, "g", 0.999, nil, nil, nil, nil, cfg); err == nil {
		t.Fatal("nil monitor accepted")
	}
	if _, err := New(eng, "g", 0, nil, nil, mon, nil, cfg); err == nil {
		t.Fatal("P=0 accepted")
	}
	bad := cfg
	bad.BrownoutEnter = 0.5 // below P
	if _, err := New(eng, "g", 0.999, nil, nil, mon, nil, bad); err == nil {
		t.Fatal("brownout-enter below P accepted")
	}
}

// TestBrownoutSharingEffectiveCapacity: with shared-work execution on, the
// brownout pressure signal reads the batch-collapsed (effective) concurrency
// of the group's instances, not raw query residency. Three same-class
// queries merged into one shared scan claim ONE of two MPPDBs — no brownout
// — where a residency read (3 queries ≥ 2 instances) would have throttled;
// a second tenant's batch on the other instance then claims the last MPPDB
// and the group goes hot until the scans drain.
func TestBrownoutSharingEffectiveCapacity(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.TickInterval = time.Second
	c, _ := testController(t, eng, 2, cfg)
	cl := &queries.Class{ID: "Q", ScanSecGB: 6} // iso 150s here; scan-dominated so σ is small
	for _, inst := range c.insts {
		if err := inst.SetSharing(true); err != nil {
			t.Fatal(err)
		}
	}
	c.insts[0].DeployTenant("A", 100)
	c.insts[1].DeployTenant("B", 100)
	c.Start()

	for i := 0; i < 3; i++ {
		if _, err := c.insts[0].Submit("A", cl, nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run(2 * sim.Second)
	if got := c.insts[0].Running(); got != 3 {
		t.Fatalf("raw residency %d, want 3", got)
	}
	if got := c.insts[0].EffectiveRunning(); got != 1 {
		t.Fatalf("effective concurrency %d, want 1 (merged batch)", got)
	}
	if c.Level() != LevelNormal {
		t.Fatalf("level %d with one merged batch on two instances, want normal "+
			"(a residency read would see 3 queries >= 2 MPPDBs)", c.Level())
	}

	// A second tenant's batch claims the remaining MPPDB: pressure.
	for i := 0; i < 2; i++ {
		if _, err := c.insts[1].Submit("B", cl, nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run(4 * sim.Second)
	if c.Level() != LevelThrottleHot {
		t.Fatalf("level %d with every MPPDB claimed, want throttle-hot", c.Level())
	}

	// The scans drain; the brownout clears.
	eng.Run(700 * sim.Second)
	if c.insts[0].Running()+c.insts[1].Running() != 0 {
		t.Fatal("queries still resident after drain")
	}
	if c.Level() != LevelNormal {
		t.Fatalf("level %d after drain, want normal", c.Level())
	}
}
