// Package admission implements overload protection for a deployed
// MPPDBaaS: per-tenant contract enforcement (virtual-time token buckets
// derived from each tenant's contracted workload), a bounded per-group
// admission queue with deadline-aware load shedding, and a group-level
// brownout controller that watches the live RT-TTP estimate and recovery
// state and progressively sheds over-contract tenants first, best-effort
// traffic second — never contract-abiding SLA traffic.
//
// Thrifty's consolidation math (§3–§5) is only valid while every tenant
// stays inside the arrival process the advisor grouped it by; this package
// is the enforcement layer that keeps one misbehaving tenant from burning
// its co-tenants' P% guarantee through processor-sharing contention.
//
// Everything runs on the group's virtual clock domain, so admission
// decisions are deterministic: same seed ⇒ byte-identical telemetry.
package admission

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Contract is a tenant's contracted arrival process, as a token bucket:
// the tenant may submit at Rate queries per virtual second sustained, with
// bursts of up to Burst queries above the sustained rate. A zero contract
// (Rate <= 0) is unlimited — the tenant is never throttled, only counted.
type Contract struct {
	// Rate is the sustained admission rate in queries per virtual second
	// of *busy* time (the advisor's arrival model is conditioned on the
	// tenant being active; an idle tenant accrues burst headroom instead).
	Rate float64
	// Burst is the bucket capacity in queries.
	Burst float64
}

// Unlimited reports whether the contract never throttles.
func (c Contract) Unlimited() bool { return c.Rate <= 0 }

// Contract floors: a derived contract never drops below these, so a tenant
// with a sparse log still gets a usable interactive allowance.
const (
	// MinRate is one query per two virtual minutes.
	MinRate = 1.0 / 120
	// MinBurst admits a small batch back-to-back.
	MinBurst = 4.0
)

// ContractFromLog derives a tenant's contract from its composed activity
// log — the same per-tenant arrival model the grouping advisor consolidated
// by. The sustained rate is the tenant's query count over its active time
// (the busy arrival intensity), and the burst is the largest number of
// submissions the log places within any single monitor epoch (60 s), both
// scaled by headroom (>= 1) so ordinary statistical variation above the
// logged history is not punished. headroom <= 0 defaults to 2.
func ContractFromLog(tl *workload.TenantLog, headroom float64) Contract {
	if headroom <= 0 {
		headroom = 2
	}
	if tl == nil {
		return Contract{Rate: headroom * MinRate, Burst: headroom * MinBurst}
	}
	events := 0
	maxEpoch := 0
	for _, ref := range tl.Sessions {
		events += len(ref.Log.Events)
		// Events are in time order within a session; count the max per
		// 60 s epoch with a sliding window over offsets.
		lo := 0
		for hi, ev := range ref.Log.Events {
			for ref.Log.Events[lo].Offset+workload.MonitorEpoch <= ev.Offset {
				lo++
			}
			if n := hi - lo + 1; n > maxEpoch {
				maxEpoch = n
			}
		}
	}
	active := tl.Activity.Total().Seconds()
	rate := MinRate
	if events > 0 && active > 0 {
		if r := float64(events) / active; r > rate {
			rate = r
		}
	}
	burst := MinBurst
	if b := float64(maxEpoch); b > burst {
		burst = b
	}
	return Contract{Rate: headroom * rate, Burst: headroom * burst}
}

// ContractsFromLogs derives every tenant's contract from its log.
func ContractsFromLogs(logs []*workload.TenantLog, headroom float64) map[string]Contract {
	out := make(map[string]Contract, len(logs))
	for _, tl := range logs {
		out[tl.Tenant.ID] = ContractFromLog(tl, headroom)
	}
	return out
}

// bucket is a virtual-time token bucket. All methods assume the caller
// serializes access (the group's clock domain).
type bucket struct {
	c      Contract
	tokens float64
	last   sim.Time
}

func newBucket(c Contract) *bucket {
	return &bucket{c: c, tokens: c.Burst}
}

// refill accrues tokens for the virtual time elapsed since the last call.
func (b *bucket) refill(now sim.Time) {
	if now <= b.last {
		return
	}
	b.tokens += b.c.Rate * (now - b.last).Seconds()
	if b.tokens > b.c.Burst {
		b.tokens = b.c.Burst
	}
	b.last = now
}

// take admits one query if at least need tokens are present, consuming one
// token. On denial it returns the virtual time until the bucket will have
// refilled to need.
func (b *bucket) take(now sim.Time, need float64) (ok bool, retryAfter sim.Time) {
	b.refill(now)
	if b.tokens >= need {
		b.tokens--
		return true, 0
	}
	return false, b.eta(need)
}

// eta is the virtual time until the bucket refills to need (at least 1 s).
func (b *bucket) eta(need float64) sim.Time {
	d := sim.Time((need - b.tokens) / b.c.Rate * float64(sim.Second))
	if d < sim.Second {
		d = sim.Second
	}
	return d
}

// punish empties the bucket — the brownout policer's response to a hot
// tenant that keeps submitting while rejected: every further attempt
// restarts the refill from zero, so the tenant stays out until it actually
// backs off.
func (b *bucket) punish() { b.tokens = 0 }

func (c Contract) String() string {
	if c.Unlimited() {
		return "unlimited"
	}
	return fmt.Sprintf("rate=%.4f/s burst=%.1f", c.Rate, c.Burst)
}
