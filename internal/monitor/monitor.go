// Package monitor implements the Tenant Activity Monitor (thesis §3a, §5.1):
// it observes query starts and finishes per tenant-group, derives tenant
// activity, and maintains the run-time TTP (RT-TTP) over a sliding window —
// the signal that triggers lightweight elastic scaling when it drops below
// the performance SLA guarantee P.
package monitor

import (
	"fmt"
	"time"

	"repro/internal/epoch"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// QueryRecord is one completed query observation.
type QueryRecord struct {
	Tenant string
	Class  *queries.Class
	Submit sim.Time
	Finish sim.Time
	// SLATarget is the latency the tenant is entitled to: the isolated
	// latency on its requested configuration.
	SLATarget sim.Time
	// MPPDB is the instance that served the query.
	MPPDB string
}

// Latency returns the observed latency.
func (r QueryRecord) Latency() sim.Time { return r.Finish - r.Submit }

// Normalized returns latency divided by the SLA target — the Fig 7.7b/d
// metric ("1.0 means a query has finished execution as quick as it should be
// when measured in an isolated environment").
func (r QueryRecord) Normalized() float64 {
	if r.SLATarget <= 0 {
		return 1
	}
	return float64(r.Latency()) / float64(r.SLATarget)
}

// SLAMet reports whether the query met its latency SLA. A small tolerance
// absorbs float-to-duration rounding in the simulator.
func (r QueryRecord) SLAMet() bool { return r.Normalized() <= 1.0+1e-9 }

// GroupMonitor tracks one tenant-group.
type GroupMonitor struct {
	eng    *sim.Engine
	group  string
	r      int
	window time.Duration

	// inflight counts running queries per (non-excluded) tenant.
	inflight map[string]int
	// excluded tenants no longer count toward the group's activity (their
	// queries moved to a dedicated MPPDB after elastic scaling: "the
	// tenant-group excluded all the activities of the removed tenant").
	excluded map[string]bool
	// activeSince records when each currently-active tenant became active.
	activeSince map[string]sim.Time
	// perTenant accumulates closed activity intervals per tenant, pruned to
	// the window (used by over-active identification).
	perTenant map[string][]epoch.Interval

	// Violation tracking: spans during which more than R tenants were
	// active concurrently.
	violations []epoch.Interval
	overSince  sim.Time
	over       bool

	// observedSince is the start of observation (RT-TTP over a window that
	// extends before it is computed against observed time only).
	observedSince sim.Time

	records []QueryRecord

	// Telemetry (optional): per-query SLA accounting and the group's
	// active-tenant gauge.
	tel        *telemetry.Hub
	mCompleted *telemetry.Counter
	mMissed    *telemetry.Counter
	mActive    *telemetry.Gauge
}

// NewGroup creates a monitor for one tenant-group with the given replication
// factor and sliding window (the thesis uses 24 hours).
func NewGroup(eng *sim.Engine, group string, r int, window time.Duration) (*GroupMonitor, error) {
	if r < 1 {
		return nil, fmt.Errorf("monitor: R=%d", r)
	}
	if window <= 0 {
		return nil, fmt.Errorf("monitor: window %v", window)
	}
	return &GroupMonitor{
		eng:           eng,
		group:         group,
		r:             r,
		window:        window,
		inflight:      make(map[string]int),
		excluded:      make(map[string]bool),
		activeSince:   make(map[string]sim.Time),
		perTenant:     make(map[string][]epoch.Interval),
		observedSince: eng.Now(),
	}, nil
}

// Group returns the monitored group's identifier.
func (m *GroupMonitor) Group() string { return m.group }

// SetTelemetry attaches a telemetry hub: every completed query feeds the
// per-tenant SLA account, misses are published as sla_violation events, and
// the group's active-tenant count is kept as a gauge. A nil hub disables
// instrumentation.
func (m *GroupMonitor) SetTelemetry(h *telemetry.Hub) {
	m.tel = h
	if h == nil {
		return
	}
	m.mCompleted = h.Registry.Counter("thrifty_queries_completed_total", "group", m.group)
	m.mMissed = h.Registry.Counter("thrifty_queries_sla_missed_total", "group", m.group)
	m.mActive = h.Registry.Gauge("thrifty_group_active_tenants", "group", m.group)
}

// ActiveTenants returns the number of currently active (non-excluded)
// tenants — the strong notion of active: at least one query in flight.
func (m *GroupMonitor) ActiveTenants() int { return len(m.inflight) }

// Exclude removes a tenant from the group's activity accounting (after
// elastic scaling moved it to a dedicated MPPDB).
func (m *GroupMonitor) Exclude(tenant string) {
	if m.excluded[tenant] {
		return
	}
	// Close out any in-flight activity of the tenant first.
	if m.inflight[tenant] > 0 {
		delete(m.inflight, tenant)
		m.tenantInactive(tenant)
		m.recheckViolation()
		if m.tel != nil {
			m.mActive.Set(float64(len(m.inflight)))
		}
	}
	m.excluded[tenant] = true
}

// Excluded reports whether the tenant has been excluded.
func (m *GroupMonitor) Excluded(tenant string) bool { return m.excluded[tenant] }

// QueryStarted records a query start for the tenant.
func (m *GroupMonitor) QueryStarted(tenant string) {
	if m.excluded[tenant] {
		return
	}
	m.inflight[tenant]++
	if m.inflight[tenant] == 1 {
		m.activeSince[tenant] = m.eng.Now()
		m.recheckViolation()
		if m.tel != nil {
			m.mActive.Set(float64(len(m.inflight)))
		}
	}
}

// QueryFinished records a query completion and, optionally, the full record.
func (m *GroupMonitor) QueryFinished(rec QueryRecord) {
	m.records = append(m.records, rec)
	if m.tel != nil {
		met := rec.SLAMet()
		m.mCompleted.Inc()
		m.tel.SLA.Observe(rec.Tenant, rec.Normalized(), met)
		if !met {
			m.mMissed.Inc()
			m.tel.Events.Publish(telemetry.Event{
				Type:   telemetry.EventSLAViolation,
				Group:  m.group,
				Tenant: rec.Tenant,
				MPPDB:  rec.MPPDB,
				Value:  rec.Normalized(),
				Detail: rec.Class.ID,
			})
		}
	}
	t := rec.Tenant
	if m.excluded[t] {
		return
	}
	if m.inflight[t] == 0 {
		return // start was recorded before an Exclude; ignore
	}
	m.inflight[t]--
	if m.inflight[t] == 0 {
		delete(m.inflight, t)
		m.tenantInactive(t)
		m.recheckViolation()
		if m.tel != nil {
			m.mActive.Set(float64(len(m.inflight)))
		}
	}
}

// tenantInactive closes the tenant's current activity interval.
func (m *GroupMonitor) tenantInactive(t string) {
	start, ok := m.activeSince[t]
	if !ok {
		return
	}
	delete(m.activeSince, t)
	now := m.eng.Now()
	if now > start {
		m.perTenant[t] = append(m.perTenant[t], epoch.Interval{Start: start, End: now})
	}
	m.pruneTenant(t)
}

// recheckViolation opens or closes the "more than R active" span.
func (m *GroupMonitor) recheckViolation() {
	now := m.eng.Now()
	overNow := len(m.inflight) > m.r
	switch {
	case overNow && !m.over:
		m.over = true
		m.overSince = now
	case !overNow && m.over:
		m.over = false
		if now > m.overSince {
			m.violations = append(m.violations, epoch.Interval{Start: m.overSince, End: now})
		}
		m.pruneViolations()
	}
}

func (m *GroupMonitor) pruneViolations() {
	cut := m.eng.Now() - sim.Duration(m.window)*2
	i := 0
	for i < len(m.violations) && m.violations[i].End < cut {
		i++
	}
	if i > 0 {
		// Shift in place: the slice is internal-only (readers copy), so
		// pruning must not reallocate on every violation close.
		n := copy(m.violations, m.violations[i:])
		m.violations = m.violations[:n]
	}
}

func (m *GroupMonitor) pruneTenant(t string) {
	cut := m.eng.Now() - sim.Duration(m.window)*2
	ivs := m.perTenant[t]
	i := 0
	for i < len(ivs) && ivs[i].End < cut {
		i++
	}
	if i > 0 {
		// Shift in place: TenantActivity hands callers a copy, so the
		// per-tenant log can reuse its backing array across prunes.
		n := copy(ivs, ivs[i:])
		m.perTenant[t] = ivs[:n]
	}
}

// RTTTP returns the run-time TTP over the trailing window: the fraction of
// observed window time during which at most R tenants were active.
func (m *GroupMonitor) RTTTP() float64 {
	now := m.eng.Now()
	from := now - sim.Duration(m.window)
	if from < m.observedSince {
		from = m.observedSince
	}
	span := now - from
	if span <= 0 {
		return 1
	}
	var viol sim.Time
	for _, v := range m.violations {
		s, e := v.Start, v.End
		if s < from {
			s = from
		}
		if e > s {
			viol += e - s
		}
	}
	if m.over {
		s := m.overSince
		if s < from {
			s = from
		}
		if now > s {
			viol += now - s
		}
	}
	return 1 - float64(viol)/float64(span)
}

// TenantActivity returns the tenant's observed activity within the trailing
// window, as a normalized interval set (an open interval is closed at now).
func (m *GroupMonitor) TenantActivity(tenant string) epoch.Activity {
	now := m.eng.Now()
	from := now - sim.Duration(m.window)
	ivs := append([]epoch.Interval(nil), m.perTenant[tenant]...)
	if s, ok := m.activeSince[tenant]; ok && now > s {
		ivs = append(ivs, epoch.Interval{Start: s, End: now})
	}
	return epoch.Normalize(ivs).Clip(from, now)
}

// Tenants returns all tenants with any observed activity (excluded or not).
func (m *GroupMonitor) Tenants() []string {
	seen := map[string]bool{}
	for t := range m.perTenant {
		seen[t] = true
	}
	for t := range m.activeSince {
		seen[t] = true
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	// Deterministic order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Records returns all completed query records (including excluded tenants').
func (m *GroupMonitor) Records() []QueryRecord { return m.records }

// RecordCount returns the number of completed-query records retained. The
// log is append-only, so the count alone detects staleness of a copy.
func (m *GroupMonitor) RecordCount() int { return len(m.records) }

// SLAAttainment returns the fraction of completed queries that met their
// SLA. It returns 1 when nothing completed yet.
func (m *GroupMonitor) SLAAttainment() float64 {
	if len(m.records) == 0 {
		return 1
	}
	met := 0
	for _, r := range m.records {
		if r.SLAMet() {
			met++
		}
	}
	return float64(met) / float64(len(m.records))
}
