package monitor

import (
	"testing"
	"time"

	"repro/internal/queries"
	"repro/internal/sim"
)

func rec(tenant string, submit, finish, target sim.Time) QueryRecord {
	return QueryRecord{Tenant: tenant, Submit: submit, Finish: finish, SLATarget: target}
}

func TestQueryRecordMetrics(t *testing.T) {
	r := rec("a", 10*sim.Second, 30*sim.Second, 20*sim.Second)
	if r.Latency() != 20*sim.Second {
		t.Errorf("Latency = %v", r.Latency())
	}
	if r.Normalized() != 1.0 || !r.SLAMet() {
		t.Errorf("Normalized = %v, SLAMet = %v", r.Normalized(), r.SLAMet())
	}
	slow := rec("a", 0, 30*sim.Second, 20*sim.Second)
	if slow.Normalized() != 1.5 || slow.SLAMet() {
		t.Errorf("slow: Normalized = %v, SLAMet = %v", slow.Normalized(), slow.SLAMet())
	}
	if rec("a", 0, 5*sim.Second, 0).Normalized() != 1 {
		t.Error("zero target should normalize to 1")
	}
}

func TestNewGroupValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewGroup(eng, "g", 0, time.Hour); err == nil {
		t.Error("R=0 accepted")
	}
	if _, err := NewGroup(eng, "g", 3, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestActiveTenantCounting(t *testing.T) {
	eng := sim.NewEngine()
	m, err := NewGroup(eng, "g", 3, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	m.QueryStarted("a")
	m.QueryStarted("a") // second concurrent query, same tenant
	m.QueryStarted("b")
	if got := m.ActiveTenants(); got != 2 {
		t.Errorf("ActiveTenants = %d, want 2", got)
	}
	m.QueryFinished(rec("a", 0, 0, 0))
	if got := m.ActiveTenants(); got != 2 {
		t.Errorf("after one of a's queries: %d, want 2 (strong inactive notion)", got)
	}
	m.QueryFinished(rec("a", 0, 0, 0))
	if got := m.ActiveTenants(); got != 1 {
		t.Errorf("after all of a's queries: %d, want 1", got)
	}
}

// TestRTTTPTracksViolations builds the §5.1 scenario: a group with R=1 sees
// two tenants active together for 10% of a 100-second observation window.
func TestRTTTPTracksViolations(t *testing.T) {
	eng := sim.NewEngine()
	m, _ := NewGroup(eng, "g", 1, 100*time.Second)
	// Tenant a active [0, 60); tenant b active [50, 60): violation 10 s.
	m.QueryStarted("a")
	eng.Schedule(50*sim.Second, func(sim.Time) { m.QueryStarted("b") })
	eng.Schedule(60*sim.Second, func(sim.Time) {
		m.QueryFinished(rec("a", 0, 60*sim.Second, sim.MaxTime))
		m.QueryFinished(rec("b", 50*sim.Second, 60*sim.Second, sim.MaxTime))
	})
	eng.Schedule(100*sim.Second, func(sim.Time) {})
	eng.RunAll()
	if got := m.RTTTP(); got != 0.9 {
		t.Errorf("RTTTP = %v, want 0.9", got)
	}
}

func TestRTTTPOpenViolation(t *testing.T) {
	// A violation still in progress counts up to "now".
	eng := sim.NewEngine()
	m, _ := NewGroup(eng, "g", 1, 100*time.Second)
	eng.Schedule(50*sim.Second, func(sim.Time) {
		m.QueryStarted("a")
		m.QueryStarted("b")
	})
	eng.Schedule(100*sim.Second, func(sim.Time) {})
	eng.RunAll()
	if got := m.RTTTP(); got != 0.5 {
		t.Errorf("RTTTP = %v, want 0.5 (open violation over half the observed time)", got)
	}
}

func TestRTTTPWindowExcludesOldViolations(t *testing.T) {
	eng := sim.NewEngine()
	m, _ := NewGroup(eng, "g", 1, 100*time.Second)
	// Violation [0, 10): outside the window once now = 200.
	m.QueryStarted("a")
	m.QueryStarted("b")
	eng.Schedule(10*sim.Second, func(sim.Time) {
		m.QueryFinished(rec("a", 0, 0, sim.MaxTime))
		m.QueryFinished(rec("b", 0, 0, sim.MaxTime))
	})
	eng.Schedule(200*sim.Second, func(sim.Time) {})
	eng.RunAll()
	if got := m.RTTTP(); got != 1.0 {
		t.Errorf("RTTTP = %v, want 1.0 (violation aged out)", got)
	}
}

func TestRTTTPBeforeAnyObservation(t *testing.T) {
	eng := sim.NewEngine()
	m, _ := NewGroup(eng, "g", 3, 24*time.Hour)
	if got := m.RTTTP(); got != 1 {
		t.Errorf("RTTTP with zero observed time = %v, want 1", got)
	}
}

func TestExclusion(t *testing.T) {
	eng := sim.NewEngine()
	m, _ := NewGroup(eng, "g", 1, time.Hour)
	m.QueryStarted("hog")
	m.QueryStarted("b")
	if m.ActiveTenants() != 2 {
		t.Fatal("setup")
	}
	m.Exclude("hog")
	if !m.Excluded("hog") {
		t.Error("hog not marked excluded")
	}
	if m.ActiveTenants() != 1 {
		t.Errorf("ActiveTenants after exclusion = %d, want 1", m.ActiveTenants())
	}
	// Further activity from the excluded tenant is invisible.
	m.QueryStarted("hog")
	if m.ActiveTenants() != 1 {
		t.Error("excluded tenant still counted")
	}
	// Double exclusion is a no-op.
	m.Exclude("hog")
	// A finish for a query that started before exclusion must not underflow.
	m.QueryFinished(rec("hog", 0, 0, sim.MaxTime))
	if m.ActiveTenants() != 1 {
		t.Error("stale finish corrupted the count")
	}
}

func TestTenantActivityIntervals(t *testing.T) {
	eng := sim.NewEngine()
	m, _ := NewGroup(eng, "g", 3, time.Hour)
	m.QueryStarted("a")
	eng.Schedule(10*sim.Second, func(sim.Time) { m.QueryFinished(rec("a", 0, 0, sim.MaxTime)) })
	eng.Schedule(20*sim.Second, func(sim.Time) { m.QueryStarted("a") })
	eng.Schedule(25*sim.Second, func(sim.Time) {})
	eng.RunAll()
	act := m.TenantActivity("a")
	if len(act) != 2 {
		t.Fatalf("activity = %v, want 2 intervals", act)
	}
	if act[0].Start != 0 || act[0].End != 10*sim.Second {
		t.Errorf("first interval %v", act[0])
	}
	// The open interval is closed at now.
	if act[1].Start != 20*sim.Second || act[1].End != 25*sim.Second {
		t.Errorf("open interval %v", act[1])
	}
	if ts := m.Tenants(); len(ts) != 1 || ts[0] != "a" {
		t.Errorf("Tenants = %v", ts)
	}
}

func TestSLAAttainment(t *testing.T) {
	eng := sim.NewEngine()
	m, _ := NewGroup(eng, "g", 3, time.Hour)
	if m.SLAAttainment() != 1 {
		t.Error("empty attainment not 1")
	}
	cl := &queries.Class{ID: "x"}
	m.QueryStarted("a")
	m.QueryFinished(QueryRecord{Tenant: "a", Class: cl, Submit: 0, Finish: 10 * sim.Second, SLATarget: 20 * sim.Second})
	m.QueryStarted("a")
	m.QueryFinished(QueryRecord{Tenant: "a", Class: cl, Submit: 0, Finish: 30 * sim.Second, SLATarget: 20 * sim.Second})
	if got := m.SLAAttainment(); got != 0.5 {
		t.Errorf("attainment = %v, want 0.5", got)
	}
	if len(m.Records()) != 2 {
		t.Errorf("records = %d", len(m.Records()))
	}
}
