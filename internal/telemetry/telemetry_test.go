package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSpansAgainstSimClock(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTracer(eng, 16)

	root := tr.StartSpan("query", "tenant", "T1", "class", "TPCH-Q1")
	route := tr.StartChild(root.Context(), "route")
	route.Annotate("mppdb", "TG-0-db0")
	route.End()
	exec := tr.StartChild(root.Context(), "execute")
	eng.Schedule(5*sim.Second, func(sim.Time) {
		exec.End()
		root.End()
	})
	eng.RunAll()

	spans := tr.Finished()
	if len(spans) != 3 {
		t.Fatalf("%d finished spans", len(spans))
	}
	// Commit order: route, execute, query.
	if spans[0].Name != "route" || spans[1].Name != "execute" || spans[2].Name != "query" {
		t.Errorf("span order %v %v %v", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	for _, s := range spans[:2] {
		if s.Parent != spans[2].ID || s.Trace != spans[2].Trace {
			t.Errorf("span %s not linked to root: %+v", s.Name, s)
		}
	}
	if spans[1].Duration() != 5*sim.Second {
		t.Errorf("execute duration %v", spans[1].Duration())
	}
	// End is idempotent.
	root.End()
	if len(tr.Finished()) != 3 {
		t.Error("double End committed twice")
	}
}

func TestTracerRingBound(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTracer(eng, 4)
	for i := 0; i < 10; i++ {
		tr.StartSpan("s").End()
	}
	spans := tr.Finished()
	if len(spans) != 4 {
		t.Fatalf("%d retained", len(spans))
	}
	if spans[0].ID != 7 || spans[3].ID != 10 {
		t.Errorf("retained IDs %d..%d, want 7..10", spans[0].ID, spans[3].ID)
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d", tr.Dropped())
	}
}

func TestWallClock(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	time.Sleep(2 * time.Millisecond)
	b := c.Now()
	if a < 0 || b <= a {
		t.Errorf("wall clock not monotonic: %v then %v", a, b)
	}
	// The tracer works unchanged against wall time.
	tr := NewTracer(c, 4)
	sp := tr.StartSpan("wall")
	time.Sleep(time.Millisecond)
	sp.End()
	if d := tr.Finished()[0].Duration(); d < sim.Millisecond {
		t.Errorf("wall span duration %v", d)
	}
}

func TestEventLogRingAndSubscribe(t *testing.T) {
	eng := sim.NewEngine()
	l := NewEventLog(eng, 3)
	ch, cancel := l.Subscribe(2)

	for i := 0; i < 5; i++ {
		eng.Schedule(sim.Time(i)*sim.Second, func(sim.Time) {
			l.Publish(Event{Type: EventSLAViolation, Tenant: "T1"})
		})
	}
	eng.RunAll()

	recent := l.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("%d retained", len(recent))
	}
	if recent[0].Seq != 3 || recent[2].Seq != 5 {
		t.Errorf("retained seqs %d..%d, want 3..5", recent[0].Seq, recent[2].Seq)
	}
	if recent[2].At != 4*sim.Second {
		t.Errorf("event At = %v", recent[2].At)
	}
	if got := l.Recent(1); len(got) != 1 || got[0].Seq != 5 {
		t.Errorf("Recent(1) = %+v", got)
	}
	if l.Total() != 5 {
		t.Errorf("total = %d", l.Total())
	}

	// The subscriber's buffer held 2; the rest were dropped, never blocking.
	if ev := <-ch; ev.Seq != 1 {
		t.Errorf("first delivered seq %d", ev.Seq)
	}
	cancel()
	cancel() // idempotent
	if _, ok := <-ch; ok {
		// one buffered event may remain; drain until closed
		if _, ok := <-ch; ok {
			t.Error("channel not closed after cancel")
		}
	}
}

func TestEventString(t *testing.T) {
	ev := Event{Seq: 7, At: 90 * sim.Second, Type: EventScalingTriggered,
		Group: "TG-0", Tenant: "T3", Value: 0.99, Detail: "over-active [T3]"}
	want := "#7 0d00:01:30.000 scaling_triggered group=TG-0 tenant=T3 value=0.99 over-active [T3]"
	if got := ev.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSLAAccount(t *testing.T) {
	a := NewSLAAccount(0.999)
	a.Observe("T2", 0.8, true)
	a.Observe("T1", 1.5, false)
	a.Observe("T1", 0.9, true)
	a.Observe("T1", 0.9, true)

	rep := a.Report()
	if len(rep) != 2 || rep[0].Tenant != "T1" || rep[1].Tenant != "T2" {
		t.Fatalf("report = %+v", rep)
	}
	t1 := rep[0]
	if t1.Met != 2 || t1.Missed != 1 || t1.WorstNormalized != 1.5 || t1.OK {
		t.Errorf("T1 = %+v", t1)
	}
	if !rep[1].OK || rep[1].Attainment != 1 {
		t.Errorf("T2 = %+v", rep[1])
	}
	if got, want := a.Overall(), 3.0/4.0; got != want {
		t.Errorf("overall = %v, want %v", got, want)
	}
	if NewSLAAccount(0.9).Overall() != 1 {
		t.Error("empty account overall != 1")
	}
}

// TestHubConcurrency drives every hub component from many goroutines at once
// under -race: spans, events with a live subscriber, SLA observations.
func TestHubConcurrency(t *testing.T) {
	h := NewHub(NewWallClock(), 0.999)
	ch, cancel := h.Events.Subscribe(64)
	defer cancel()
	done := make(chan struct{})
	go func() { // consumer
		for range ch {
		}
		close(done)
	}()

	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				sp := h.Tracer.StartSpan("op", "worker", "w")
				h.Registry.Counter("ops_total").Inc()
				h.SLA.Observe("T1", 0.5, true)
				h.Events.Publish(Event{Type: EventSLAViolation, Tenant: "T1"})
				sp.End()
			}
		}(i)
	}
	wg.Wait()
	cancel()
	<-done

	if h.Registry.Counter("ops_total").Value() != 3000 {
		t.Errorf("ops = %d", h.Registry.Counter("ops_total").Value())
	}
	if h.Events.Total() != 3000 {
		t.Errorf("events = %d", h.Events.Total())
	}
	var buf bytes.Buffer
	if err := h.Tracer.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "op") {
		t.Error("trace dump empty")
	}
}
