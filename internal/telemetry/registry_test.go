package telemetry

import (
	"bytes"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "group", "TG-0")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d", got)
	}
	if r.Counter("requests_total", "group", "TG-0") != c {
		t.Error("re-registration returned a new counter")
	}
	if r.Counter("requests_total", "group", "TG-1") == c {
		t.Error("different labels shared a series")
	}

	g := r.Gauge("inflight")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %v", got)
	}

	h := r.Histogram("latency_seconds", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 5060.5 {
		t.Errorf("sum = %v", h.Sum())
	}
	snap := r.Snapshot()
	var hv *MetricValue
	for i := range snap {
		if snap[i].Name == "latency_seconds" {
			hv = &snap[i]
		}
	}
	if hv == nil {
		t.Fatal("histogram missing from snapshot")
	}
	want := []int64{1, 2, 1, 1} // ≤1, ≤10, ≤100, +Inf
	for i, w := range want {
		if hv.Buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, hv.Buckets[i], w)
		}
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("no panic on kind mismatch")
		}
	}()
	r.Gauge("x")
}

// TestPrometheusText checks the exposition output is well-formed 0.0.4 text:
// TYPE headers, sample lines that parse, cumulative histogram buckets.
func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("thrifty_routed_total", "group", "TG-0").Add(7)
	r.Gauge("thrifty_rt_ttp", "group", "TG-0").Set(0.9995)
	h := r.Histogram("thrifty_latency_seconds", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(20)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	typeLine := regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_+]+="[^"]*")*\})? -?[0-9.+eEInf]+$`)
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !typeLine.MatchString(line) {
				t.Errorf("bad TYPE line %q", line)
			}
		} else if !sample.MatchString(line) {
			t.Errorf("bad sample line %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE thrifty_routed_total counter",
		`thrifty_routed_total{group="TG-0"} 7`,
		`thrifty_rt_ttp{group="TG-0"} 0.9995`,
		`thrifty_latency_seconds_bucket{le="1"} 1`,
		`thrifty_latency_seconds_bucket{le="10"} 1`,
		`thrifty_latency_seconds_bucket{le="+Inf"} 2`,
		"thrifty_latency_seconds_sum 20.5",
		"thrifty_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// creating series, updating all three instrument kinds — while readers take
// snapshots and Prometheus encodings. Run under -race this is the
// subsystem's thread-safety proof (ISSUE acceptance: ≥ 8 writers).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const writers = 12
	const perWriter = 2000
	groups := []string{"TG-0", "TG-1", "TG-2"}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Snapshot readers run for the whole write phase.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Snapshot()
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	var writeWG sync.WaitGroup
	for i := 0; i < writers; i++ {
		writeWG.Add(1)
		go func(i int) {
			defer writeWG.Done()
			g := groups[i%len(groups)]
			for j := 0; j < perWriter; j++ {
				r.Counter("hammer_total", "group", g).Inc()
				r.Gauge("hammer_inflight", "group", g).Add(1)
				r.Histogram("hammer_seconds", nil, "group", g).Observe(float64(j % 50))
				r.Gauge("hammer_inflight", "group", g).Add(-1)
			}
		}(i)
	}
	writeWG.Wait()
	close(stop)
	wg.Wait()

	var total int64
	for _, g := range groups {
		total += r.Counter("hammer_total", "group", g).Value()
	}
	if want := int64(writers * perWriter); total != want {
		t.Errorf("counter total = %d, want %d", total, want)
	}
	for _, g := range groups {
		if v := r.Gauge("hammer_inflight", "group", g).Value(); v != 0 {
			t.Errorf("gauge %s = %v, want 0", g, v)
		}
		h := r.Histogram("hammer_seconds", nil, "group", g)
		if h.Count() == 0 {
			t.Errorf("histogram %s empty", g)
		}
	}
}
