package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/sim"
)

// EventType classifies SLA-relevant occurrences.
type EventType string

const (
	// EventSLAViolation: a completed query exceeded its latency SLA target.
	EventSLAViolation EventType = "sla_violation"
	// EventRTTTPDip: a group's run-time TTP crossed below the guarantee P.
	EventRTTTPDip EventType = "rt_ttp_dip"
	// EventScalingTriggered: the elastic scaler decided to carve out
	// over-active tenants onto a dedicated MPPDB.
	EventScalingTriggered EventType = "scaling_triggered"
	// EventScalingReady: the dedicated MPPDB finished loading and queries
	// were re-pointed.
	EventScalingReady EventType = "scaling_ready"
	// EventScalingFailed: a scaling action could not complete (e.g. node
	// pool exhausted).
	EventScalingFailed EventType = "scaling_failed"
	// EventTakeOver: a tenant began continuous query submission (§7.5).
	EventTakeOver EventType = "take_over"
	// EventNodeFailure: an MPPDB lost a node and runs degraded.
	EventNodeFailure EventType = "node_failure"
	// EventNodeRepair: the replacement node restored full speed.
	EventNodeRepair EventType = "node_repair"
	// EventRecoveryStarted: the recovery controller detected a node failure
	// and began driving a replacement (§4.4).
	EventRecoveryStarted EventType = "recovery_started"
	// EventRecoveryReplaced: a replacement node was acquired from the pool;
	// startup + bulk reload are underway.
	EventRecoveryReplaced EventType = "recovery_replaced"
	// EventRecoveryCompleted: the reload finished and RepairNode restored
	// full speed.
	EventRecoveryCompleted EventType = "recovery_completed"
	// EventRecoveryFailed: a replacement attempt failed (e.g. node pool
	// exhausted); the controller backs off and retries.
	EventRecoveryFailed EventType = "recovery_failed"
	// EventQueryRetried: a submit failed transiently and was retried against
	// the tenant's replica set.
	EventQueryRetried EventType = "query_retried"
	// EventQueryTimeout: a submit exhausted its retry budget and returned a
	// typed timeout error to the caller.
	EventQueryTimeout EventType = "query_timeout"
	// EventContractExceeded: admission control rejected a query because the
	// tenant ran past its contracted arrival process (429 + Retry-After).
	EventContractExceeded EventType = "contract_exceeded"
	// EventQueryShed: admission control shed a query without running it —
	// the group's queue was full, the query could not start in time to meet
	// its SLA deadline, or brownout dropped best-effort traffic (503).
	EventQueryShed EventType = "query_shed"
	// EventBrownoutEntered: a group's brownout controller raised its shedding
	// level because the live RT-TTP neared the guarantee P or instances run
	// degraded.
	EventBrownoutEntered EventType = "brownout_entered"
	// EventBrownoutCleared: the group returned to normal admission.
	EventBrownoutCleared EventType = "brownout_cleared"
	// EventDriftDetected: the online control loop observed a tenant's live
	// activity diverging from its planned profile far enough to matter.
	EventDriftDetected EventType = "drift_detected"
	// EventOnlineReplan: the online control loop re-placed a tenant — a
	// join, a departure, or a local repair move restoring the fuzzy-capacity
	// constraint.
	EventOnlineReplan EventType = "online_replan"
	// EventOnlineFallback: local repair could not restore the constraint and
	// the loop escalated to a scoped offline re-consolidation.
	EventOnlineFallback EventType = "online_fallback"
	// EventMigrationStarted: a live migration began provisioning its target
	// (Table 5.1 startup + reload costing); queries keep draining through
	// the source group.
	EventMigrationStarted EventType = "migration_started"
	// EventMigrationCutover: the target finished provisioning and the
	// tenant→group index flipped atomically; new queries route to the
	// target while in-flight queries finish on the source.
	EventMigrationCutover EventType = "migration_cutover"
	// EventGroupRetired: a drained source group released its nodes back to
	// the pool after its post-cutover drain slack.
	EventGroupRetired EventType = "group_retired"
	// EventGraySuspected: an instance's completion-latency profile drifted
	// above its group peers' — a fail-slow (gray) fault is suspected but not
	// yet confirmed.
	EventGraySuspected EventType = "gray_suspected"
	// EventGrayConfirmed: the suspicion persisted across consecutive
	// evaluations; hedged re-routing engages for the instance.
	EventGrayConfirmed EventType = "gray_confirmed"
	// EventGrayCleared: a suspected/confirmed-gray instance returned to its
	// peers' latency profile (or its drain-replacement restored full speed).
	EventGrayCleared EventType = "gray_cleared"
	// EventGrayDrain: the response ladder escalated past hedging — the gray
	// instance is proactively drained and its slow node replaced through the
	// crash-recovery controller.
	EventGrayDrain EventType = "gray_drain"
	// EventMigrationAborted: a live migration's destination died during the
	// background reload; the migration was aborted cleanly and the tenants
	// re-placed.
	EventMigrationAborted EventType = "migration_aborted"
	// EventMigrationPromoted: a live migration's source died during the
	// drain; the destination was promoted early and serves degraded until its
	// originally costed reload would have finished.
	EventMigrationPromoted EventType = "migration_promoted"
	// EventDomainFailed: a whole failure domain (rack/zone) went down; every
	// active node in it failed at once.
	EventDomainFailed EventType = "domain_failed"
	// EventDomainRestored: a failed domain came back; its hibernated nodes
	// are acquirable again and queued recoveries can drain.
	EventDomainRestored EventType = "domain_restored"
	// EventTriageEnqueued: a recovery lifecycle hit pool exhaustion and
	// entered the cluster-wide scarcity triage queue instead of burning
	// backoff retry cycles.
	EventTriageEnqueued EventType = "triage_enqueued"
	// EventTriageGranted: the triage allocator handed a scarce node to the
	// queued lifecycle with the highest SLA-at-risk priority.
	EventTriageGranted EventType = "triage_granted"
	// EventRespread: a group that collapsed onto a single failure domain
	// live-migrated one replica onto a restored domain (background startup +
	// reload, atomic pool flip, zero dropped queries).
	EventRespread EventType = "domain_respread"
)

// Event is one occurrence on the SLA timeline.
type Event struct {
	// Seq is the log-assigned monotonic sequence number.
	Seq uint64
	// At is the clock time the event was published.
	At sim.Time
	// Type classifies the event.
	Type EventType
	// Group, Tenant, and MPPDB locate the event; empty when not applicable.
	Group  string
	Tenant string
	MPPDB  string
	// Value carries the type's headline number (normalized latency for a
	// violation, RT-TTP for a dip or trigger, node count for scaling).
	Value float64
	// Detail is a short human-readable elaboration.
	Detail string
}

// String renders the event as one deterministic log line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %v %s", e.Seq, e.At, e.Type)
	if e.Group != "" {
		fmt.Fprintf(&b, " group=%s", e.Group)
	}
	if e.Tenant != "" {
		fmt.Fprintf(&b, " tenant=%s", e.Tenant)
	}
	if e.MPPDB != "" {
		fmt.Fprintf(&b, " mppdb=%s", e.MPPDB)
	}
	if e.Value != 0 {
		fmt.Fprintf(&b, " value=%s", formatFloat(e.Value))
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " %s", e.Detail)
	}
	return b.String()
}

// EventLog is a bounded ring of events with optional live subscribers.
// Publishing never blocks: a subscriber that falls behind loses events (its
// drop count is tracked) rather than stalling the simulation or a request.
type EventLog struct {
	mu      sync.Mutex
	clock   Clock
	ring    []Event
	start   int
	n       int
	nextSeq uint64
	subs    map[int]*subscriber
	nextSub int
}

type subscriber struct {
	ch      chan Event
	dropped uint64
}

// NewEventLog builds a log retaining up to capacity recent events.
func NewEventLog(clock Clock, capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{
		clock: clock,
		ring:  make([]Event, capacity),
		subs:  make(map[int]*subscriber),
	}
}

// Publish stamps the event with the next sequence number and the clock's
// current time, appends it to the ring, and fans it out to subscribers.
// The stamped event is returned.
func (l *EventLog) Publish(ev Event) Event {
	l.mu.Lock()
	l.nextSeq++
	ev.Seq = l.nextSeq
	ev.At = l.clock.Now()
	if l.n == len(l.ring) {
		l.ring[l.start] = ev
		l.start = (l.start + 1) % len(l.ring)
	} else {
		l.ring[(l.start+l.n)%len(l.ring)] = ev
		l.n++
	}
	for _, s := range l.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped++
		}
	}
	l.mu.Unlock()
	return ev
}

// Recent returns up to n of the most recent events, oldest first. n <= 0
// returns everything retained.
func (l *EventLog) Recent(n int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > l.n {
		n = l.n
	}
	out := make([]Event, 0, n)
	for i := l.n - n; i < l.n; i++ {
		out = append(out, l.ring[(l.start+i)%len(l.ring)])
	}
	return out
}

// Total returns how many events have ever been published.
func (l *EventLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Subscribe registers a live consumer with the given channel buffer and
// returns the channel plus a cancel function. After cancel the channel is
// closed and no further events arrive on it.
func (l *EventLog) Subscribe(buffer int) (<-chan Event, func()) {
	if buffer < 1 {
		buffer = 1
	}
	l.mu.Lock()
	id := l.nextSub
	l.nextSub++
	s := &subscriber{ch: make(chan Event, buffer)}
	l.subs[id] = s
	l.mu.Unlock()
	cancel := func() {
		l.mu.Lock()
		if _, ok := l.subs[id]; ok {
			delete(l.subs, id)
			close(s.ch)
		}
		l.mu.Unlock()
	}
	return s.ch, cancel
}

// Dump writes every retained event as one line, oldest first — the
// deterministic counterpart of a live subscription.
func (l *EventLog) Dump(w io.Writer) error {
	for _, ev := range l.Recent(0) {
		if _, err := fmt.Fprintln(w, ev.String()); err != nil {
			return err
		}
	}
	return nil
}
