package telemetry

import (
	"sort"
	"sync"
)

// TenantSLO is one tenant's SLA attainment standing.
type TenantSLO struct {
	Tenant string
	// Met and Missed count completed queries by SLA outcome.
	Met, Missed int64
	// Attainment is Met / (Met + Missed).
	Attainment float64
	// WorstNormalized is the largest observed latency / SLA-target ratio.
	WorstNormalized float64
	// OK reports whether Attainment >= the service guarantee P.
	OK bool
}

// SLAAccount accumulates per-tenant SLA hit/miss tallies — the per-query
// accounting primitive that pricing, diagnosis, and the /v1/slo endpoint
// build on.
type SLAAccount struct {
	mu        sync.Mutex
	p         float64
	perTenant map[string]*slaCounts
}

type slaCounts struct {
	met, missed int64
	worst       float64
}

// NewSLAAccount builds an account judged against the guarantee p (fraction,
// e.g. 0.999).
func NewSLAAccount(p float64) *SLAAccount {
	return &SLAAccount{p: p, perTenant: make(map[string]*slaCounts)}
}

// P returns the guarantee the account judges against.
func (a *SLAAccount) P() float64 { return a.p }

// Observe records one completed query's SLA outcome.
func (a *SLAAccount) Observe(tenant string, normalized float64, met bool) {
	a.mu.Lock()
	c := a.perTenant[tenant]
	if c == nil {
		c = &slaCounts{}
		a.perTenant[tenant] = c
	}
	if met {
		c.met++
	} else {
		c.missed++
	}
	if normalized > c.worst {
		c.worst = normalized
	}
	a.mu.Unlock()
}

// Report returns every observed tenant's standing, sorted by tenant ID.
func (a *SLAAccount) Report() []TenantSLO {
	a.mu.Lock()
	out := make([]TenantSLO, 0, len(a.perTenant))
	for t, c := range a.perTenant {
		total := c.met + c.missed
		att := 1.0
		if total > 0 {
			att = float64(c.met) / float64(total)
		}
		out = append(out, TenantSLO{
			Tenant:          t,
			Met:             c.met,
			Missed:          c.missed,
			Attainment:      att,
			WorstNormalized: c.worst,
			OK:              att >= a.p,
		})
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Overall returns the service-wide attainment across all tenants (1 when
// nothing completed yet).
func (a *SLAAccount) Overall() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var met, total int64
	for _, c := range a.perTenant {
		met += c.met
		total += c.met + c.missed
	}
	if total == 0 {
		return 1
	}
	return float64(met) / float64(total)
}
