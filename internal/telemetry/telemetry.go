// Package telemetry is Thrifty's self-observation layer: a dependency-free
// metrics registry (atomic counters, gauges, and fixed-boundary latency
// histograms with Prometheus text encoding), causally-linked trace spans
// driven by a pluggable clock (virtual time in simulations, wall time in a
// live service), a bounded subscribable stream of SLA-relevant events, and
// per-tenant SLA attainment accounting.
//
// The whole layer is deterministic under the simulator: span and event
// identifiers are monotonic counters (never random), timestamps come from
// the injected Clock, and every dump/encoding orders its output totally —
// two runs of the same seeded simulation emit byte-identical traces and
// event logs.
//
// A Hub bundles one of each component and is what the instrumented
// subsystems (router, mppdb, monitor, scaling, replay, service) share. All
// components are safe for concurrent use; instrumentation sites treat a nil
// Hub as "telemetry disabled".
package telemetry

import (
	"time"

	"repro/internal/sim"
)

// Clock supplies timestamps for spans and events. *sim.Engine satisfies it
// directly (virtual time); WallClock adapts the machine clock for live
// deployments.
type Clock interface {
	Now() sim.Time
}

// WallClock is a Clock over the machine's monotonic wall time, expressed as
// a sim.Time offset from the moment the clock was created — the same
// timeline shape the simulator uses, so consumers never branch on the mode.
type WallClock struct {
	start time.Time
}

// NewWallClock anchors a wall clock at the current instant.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now returns the elapsed wall time since the anchor.
func (c *WallClock) Now() sim.Time { return sim.Time(time.Since(c.start)) }

// Hub bundles the four telemetry components behind one handle.
type Hub struct {
	Registry *Registry
	Tracer   *Tracer
	Events   *EventLog
	SLA      *SLAAccount
}

// Default capacities for the bounded components. Large enough that a full
// replay window is observable, small enough to bound memory regardless of
// run length.
const (
	DefaultSpanCapacity  = 8192
	DefaultEventCapacity = 4096
)

// NewHub builds a hub over the clock. p is the performance SLA guarantee
// the per-tenant attainment is judged against.
func NewHub(clock Clock, p float64) *Hub {
	return &Hub{
		Registry: NewRegistry(),
		Tracer:   NewTracer(clock, DefaultSpanCapacity),
		Events:   NewEventLog(clock, DefaultEventCapacity),
		SLA:      NewSLAAccount(p),
	}
}
