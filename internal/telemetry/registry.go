package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric or span dimension (e.g. group="TG-0000").
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing metric. The zero value is usable,
// but counters normally come from Registry.Counter so they are exported.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (negative n panics: counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("telemetry: counter decremented")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as a float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-boundary distribution. Boundaries are upper bounds in
// ascending order; an implicit +Inf bucket catches the overflow.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, non-cumulative
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefaultLatencyBoundaries covers analytical-query latencies from 100 ms to
// ~2 h, roughly logarithmic (seconds).
var DefaultLatencyBoundaries = []float64{
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 7200,
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered series: a name, a sorted label set, and exactly
// one of the three instruments.
type metric struct {
	name   string
	labels []Label
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics. Get-or-create is serialized; the returned
// instruments update lock-free, so hot paths pay one map lookup plus an
// atomic op. Registration with the same name and labels returns the same
// instrument; re-registering a name under a different kind panics (it is a
// programming error, like registering two flags with one name).
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// pairs converts variadic "k1, v1, k2, v2" strings into a sorted label set.
func pairs(kv []string) []Label {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q", kv))
	}
	out := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// seriesKey is the registry map key: name plus the canonical label encoding.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the series, creating it with mk when absent.
func (r *Registry) lookup(name string, labels []Label, kind metricKind, mk func(*metric)) *metric {
	key := seriesKey(name, labels)
	r.mu.RLock()
	m := r.metrics[key]
	r.mu.RUnlock()
	if m == nil {
		r.mu.Lock()
		if m = r.metrics[key]; m == nil {
			m = &metric{name: name, labels: labels, kind: kind}
			mk(m)
			r.metrics[key] = m
		}
		r.mu.Unlock()
	}
	if m.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as %v, requested as %v", key, m.kind, kind))
	}
	return m
}

// Counter returns the counter series, creating it if needed. kv is a flat
// key, value, key, value... label list.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	return r.lookup(name, pairs(kv), kindCounter, func(m *metric) { m.c = &Counter{} }).c
}

// Gauge returns the gauge series, creating it if needed.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	return r.lookup(name, pairs(kv), kindGauge, func(m *metric) { m.g = &Gauge{} }).g
}

// Histogram returns the histogram series, creating it if needed. bounds is
// only consulted on first creation; nil uses DefaultLatencyBoundaries.
func (r *Registry) Histogram(name string, bounds []float64, kv ...string) *Histogram {
	return r.lookup(name, pairs(kv), kindHistogram, func(m *metric) {
		if bounds == nil {
			bounds = DefaultLatencyBoundaries
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %s boundaries not ascending: %v", name, bounds))
			}
		}
		m.h = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
	}).h
}

// MetricValue is one series in a snapshot.
type MetricValue struct {
	Name   string
	Labels []Label
	Kind   string
	// Value holds the counter or gauge reading.
	Value float64
	// Histogram readings (Kind == "histogram" only). Buckets are
	// non-cumulative and aligned with Bounds; the final extra entry is the
	// +Inf overflow.
	Bounds  []float64
	Buckets []int64
	Count   int64
	Sum     float64
}

// Snapshot returns a consistent-enough point-in-time view of every series,
// totally ordered by (name, labels) so encodings are deterministic.
// Individual readings are atomic; the set as a whole is not a transaction —
// the usual scrape semantics.
func (r *Registry) Snapshot() []MetricValue {
	r.mu.RLock()
	keys := make([]string, 0, len(r.metrics))
	for k := range r.metrics {
		keys = append(keys, k)
	}
	ms := make([]*metric, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		ms = append(ms, r.metrics[k])
	}
	r.mu.RUnlock()

	out := make([]MetricValue, 0, len(ms))
	for _, m := range ms {
		mv := MetricValue{Name: m.name, Labels: m.labels, Kind: m.kind.String()}
		switch m.kind {
		case kindCounter:
			mv.Value = float64(m.c.Value())
		case kindGauge:
			mv.Value = m.g.Value()
		case kindHistogram:
			mv.Bounds = m.h.bounds
			mv.Buckets = make([]int64, len(m.h.buckets))
			for i := range m.h.buckets {
				mv.Buckets[i] = m.h.buckets[i].Load()
			}
			mv.Count = m.h.Count()
			mv.Sum = m.h.Sum()
		}
		out = append(out, mv)
	}
	return out
}

// WritePrometheus encodes the snapshot in the Prometheus text exposition
// format (version 0.0.4). Series are grouped under one # TYPE line per
// metric name, in sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	lastName := ""
	for _, mv := range snap {
		if mv.Name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", mv.Name, mv.Kind); err != nil {
				return err
			}
			lastName = mv.Name
		}
		switch mv.Kind {
		case "histogram":
			cum := int64(0)
			for i, b := range mv.Buckets {
				cum += b
				le := "+Inf"
				if i < len(mv.Bounds) {
					le = formatFloat(mv.Bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					mv.Name, promLabels(mv.Labels, Label{"le", le}), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", mv.Name, promLabels(mv.Labels), formatFloat(mv.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", mv.Name, promLabels(mv.Labels), mv.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", mv.Name, promLabels(mv.Labels), formatFloat(mv.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// promLabels renders a label set (plus optional extras like le) as
// {k="v",...}, or the empty string when there are no labels.
func promLabels(labels []Label, extra ...Label) string {
	if len(labels)+len(extra) == 0 {
		return ""
	}
	all := append(append([]Label(nil), labels...), extra...)
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders floats the way Prometheus clients do: shortest
// round-trip representation, integers without an exponent.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
