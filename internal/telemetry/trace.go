package telemetry

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/sim"
)

// SpanContext identifies a span within its trace, for causal linking.
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// SpanRecord is one finished span.
type SpanRecord struct {
	Trace  uint64
	ID     uint64
	Parent uint64 // 0 for root spans
	Name   string
	Start  sim.Time
	End    sim.Time
	Attrs  []Label // insertion order
}

// Duration returns the span's elapsed clock time.
func (r SpanRecord) Duration() sim.Time { return r.End - r.Start }

// Tracer creates spans against a Clock and retains the most recent finished
// spans in a bounded ring. Identifiers are monotonic counters, so a
// deterministic simulation yields a byte-identical Dump across runs.
type Tracer struct {
	mu        sync.Mutex
	clock     Clock
	nextTrace uint64
	nextSpan  uint64
	ring      []SpanRecord
	start     int
	n         int
	dropped   uint64
	free      *Span // intrusive freelist of ended spans, for reuse
}

// NewTracer builds a tracer retaining up to capacity finished spans.
func NewTracer(clock Clock, capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{clock: clock, ring: make([]SpanRecord, capacity)}
}

// Span is an in-flight operation. End it exactly once, and do not touch the
// span afterwards: End recycles the object into the tracer's freelist, so any
// post-End call may land on an unrelated later span.
type Span struct {
	t     *Tracer
	next  *Span // freelist link, nil while in flight
	rec   SpanRecord
	ended bool
	// inline backs rec.Attrs for the common small-span case so opening a
	// span costs no allocation once the freelist is warm. End copies the
	// attrs out into ring-slot-owned storage, so recycling the array never
	// mutates a retained record.
	inline [4]Label
}

// StartSpan opens a root span of a fresh trace. attrs is a flat
// key, value, ... list recorded on the span.
func (t *Tracer) StartSpan(name string, attrs ...string) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextTrace++
	return t.newSpan(t.nextTrace, 0, name, attrs)
}

// StartChild opens a span causally under parent.
func (t *Tracer) StartChild(parent SpanContext, name string, attrs ...string) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.newSpan(parent.Trace, parent.Span, name, attrs)
}

// newSpan takes a span off the freelist (or allocates one); callers hold t.mu.
func (t *Tracer) newSpan(trace, parent uint64, name string, attrs []string) *Span {
	t.nextSpan++
	s := t.free
	if s != nil {
		t.free = s.next
		s.next = nil
		s.ended = false
	} else {
		s = &Span{t: t}
	}
	s.rec = SpanRecord{
		Trace:  trace,
		ID:     t.nextSpan,
		Parent: parent,
		Name:   name,
		Start:  t.clock.Now(),
	}
	s.rec.Attrs = appendPairs(s.inline[:0], attrs)
	return s
}

// appendPairs appends a flat key/value list to dst preserving insertion
// order (unlike metric labels, span attributes tell a story in sequence).
// The panic message deliberately reports only len(kv): formatting kv itself
// would leak the slice to the heap and force every StartSpan/StartChild
// caller's variadic attr list to allocate.
func appendPairs(dst []Label, kv []string) []Label {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd attribute list (%d items)", len(kv)))
	}
	for i := 0; i < len(kv); i += 2 {
		dst = append(dst, Label{Key: kv[i], Value: kv[i+1]})
	}
	return dst
}

// Context returns the span's identity for linking children.
func (s *Span) Context() SpanContext {
	return SpanContext{Trace: s.rec.Trace, Span: s.rec.ID}
}

// Annotate appends an attribute to the span.
func (s *Span) Annotate(key, value string) {
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if !s.ended {
		s.rec.Attrs = append(s.rec.Attrs, Label{Key: key, Value: value})
	}
}

// End closes the span at the clock's current time, commits it to the
// tracer's ring, and recycles the span object. The ring slot keeps its own
// attrs backing array (grown on demand, reused across evictions), so the
// recycled span's inline storage never aliases a retained record.
func (s *Span) End() {
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.rec.End = s.t.clock.Now()
	t := s.t
	var slot *SpanRecord
	if t.n == len(t.ring) {
		slot = &t.ring[t.start]
		t.start = (t.start + 1) % len(t.ring)
		t.dropped++
	} else {
		slot = &t.ring[(t.start+t.n)%len(t.ring)]
		t.n++
	}
	attrs := append(slot.Attrs[:0], s.rec.Attrs...)
	*slot = s.rec
	slot.Attrs = attrs
	s.rec.Attrs = nil
	s.next = t.free
	t.free = s
}

// Finished returns the retained finished spans, oldest first (which is also
// ascending span-ID order, since spans commit on End and the sim clock never
// runs backwards within a run). Attrs are deep-copied so the result stays
// valid while later spans reuse the ring's slot-owned storage.
func (t *Tracer) Finished() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(t.start+i)%len(t.ring)])
		r := &out[len(out)-1]
		r.Attrs = append([]Label(nil), r.Attrs...)
	}
	return out
}

// Dropped returns how many finished spans were evicted from the ring.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Dump writes every retained span as one text line:
//
//	trace=3 span=7 parent=5 query 0d00:01:02.000 → 0d00:01:08.500 (6.5s) tenant=T0001 class=TPCH-Q1
//
// The output is totally ordered (commit order) and contains no wall-clock or
// random content, so deterministic runs produce identical bytes.
func (t *Tracer) Dump(w io.Writer) error {
	for _, r := range t.Finished() {
		if _, err := fmt.Fprintf(w, "trace=%d span=%d parent=%d %s %v → %v (%v)",
			r.Trace, r.ID, r.Parent, r.Name, r.Start, r.End, r.Duration().Sub(0)); err != nil {
			return err
		}
		for _, a := range r.Attrs {
			if _, err := fmt.Fprintf(w, " %s=%s", a.Key, a.Value); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
