package router

import (
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/mppdb"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/tenant"
)

// hedgeRig builds a ref-mode group: every instance shares one interner, so
// the router takes the pooled-tag path where gray flags, quarantine, and
// hedged duplication live.
func hedgeRig(t *testing.T, a, nodes int, members ...*tenant.Tenant) *rig {
	t.Helper()
	eng := sim.NewEngine()
	in := tenant.NewInterner()
	var dbs []*mppdb.Instance
	for i := 0; i < a; i++ {
		db := mppdb.NewInterned(eng, "db"+string(rune('0'+i)), nodes, in)
		for _, m := range members {
			db.DeployTenant(m.ID, m.DataGB)
		}
		dbs = append(dbs, db)
	}
	mon, err := monitor.NewGroup(eng, "tg", a, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewGroup(eng, "tg", dbs, members, mon)
	if err != nil {
		t.Fatal(err)
	}
	if !r.refMode {
		t.Fatal("shared-interner rig not in ref mode")
	}
	return &rig{eng: eng, dbs: dbs, mon: mon, r: r,
		cl: &queries.Class{ID: "q", FixedSec: 1, ScanSecGB: 0.1}}
}

// TestHedgePeerWinsSingleCount: every submit routed to a confirmed-gray
// instance is duplicated onto a healthy peer; the fast peer wins every race,
// the gray copy is cancelled, and exactly one record per logical query
// reaches the observers — hedging never double-counts.
func TestHedgePeerWinsSingleCount(t *testing.T) {
	r := hedgeRig(t, 3, 2, tn("a", 2))
	var recs []monitor.QueryRecord
	r.r.OnResult(func(rec monitor.QueryRecord) { recs = append(recs, rec) })
	if err := r.dbs[0].SetSlowdown(0.25); err != nil {
		t.Fatal(err)
	}
	r.r.SetGrayFlag("db0", true)

	// Spaced wider than the slowed latency so each race finishes before the
	// next submit and affinity keeps choosing the free gray G₀.
	const n = 5
	for i := 0; i < n; i++ {
		i := i
		r.eng.Schedule(sim.Time(i)*10*sim.Minute, func(sim.Time) {
			if _, err := r.r.Submit("a", r.cl); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		})
	}
	r.eng.RunAll()

	if len(recs) != n {
		t.Fatalf("%d records for %d hedged submits, want exactly one each", len(recs), n)
	}
	hedged, wins := r.r.HedgeStats()
	if hedged != n || wins != n {
		t.Errorf("hedged=%d peerWins=%d, want %d/%d (gray instance is 4x slower)", hedged, wins, n, n)
	}
	for _, rec := range recs {
		if rec.MPPDB == "db0" {
			t.Errorf("record for %s attributed to the losing gray instance", rec.Tenant)
		}
	}
	for i, db := range r.dbs {
		if db.Running() != 0 {
			t.Errorf("db%d still has %d executions after drain (loser not cancelled)", i, db.Running())
		}
	}
}

// TestHedgeGrayWinSingleCount: when the gray instance beats its duplicate
// (the flag outlived the fault), the hedge is withdrawn instead — still one
// record, attributed to the gray winner, with zero peer wins.
func TestHedgeGrayWinSingleCount(t *testing.T) {
	r := hedgeRig(t, 3, 2, tn("a", 2))
	var recs []monitor.QueryRecord
	r.r.OnResult(func(rec monitor.QueryRecord) { recs = append(recs, rec) })
	// db0 is flagged gray but actually healthy; the peers are the slow ones.
	for _, db := range r.dbs[1:] {
		if err := db.SetSlowdown(0.25); err != nil {
			t.Fatal(err)
		}
	}
	r.r.SetGrayFlag("db0", true)

	const n = 3
	for i := 0; i < n; i++ {
		r.eng.Schedule(sim.Time(i)*10*sim.Minute, func(sim.Time) {
			if _, err := r.r.Submit("a", r.cl); err != nil {
				t.Errorf("submit: %v", err)
			}
		})
	}
	r.eng.RunAll()

	if len(recs) != n {
		t.Fatalf("%d records, want %d", len(recs), n)
	}
	hedged, wins := r.r.HedgeStats()
	if hedged != n || wins != 0 {
		t.Errorf("hedged=%d peerWins=%d, want %d hedges and no peer wins", hedged, wins, n)
	}
	for _, rec := range recs {
		if rec.MPPDB != "db0" {
			t.Errorf("record attributed to %s, want the winning gray db0", rec.MPPDB)
		}
	}
	for i, db := range r.dbs {
		if db.Running() != 0 {
			t.Errorf("db%d still has %d executions after drain", i, db.Running())
		}
	}
}

// TestHedgeInFlight duplicates queries already stuck on an instance at the
// moment it is confirmed gray, exactly once each.
func TestHedgeInFlight(t *testing.T) {
	r := hedgeRig(t, 2, 2, tn("a", 2))
	var recs []monitor.QueryRecord
	r.r.OnResult(func(rec monitor.QueryRecord) { recs = append(recs, rec) })
	if err := r.dbs[0].SetSlowdown(0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.r.Submit("a", r.cl); err != nil {
		t.Fatal(err)
	}
	r.eng.Schedule(sim.Second, func(sim.Time) {
		r.r.SetGrayFlag("db0", true)
		if n := r.r.HedgeInFlight("db0"); n != 1 {
			t.Errorf("HedgeInFlight placed %d hedges, want 1", n)
		}
		// Already hedged: a second sweep must not duplicate again.
		if n := r.r.HedgeInFlight("db0"); n != 0 {
			t.Errorf("second HedgeInFlight placed %d hedges, want 0", n)
		}
	})
	r.eng.RunAll()

	if len(recs) != 1 {
		t.Fatalf("%d records for one in-flight-hedged query", len(recs))
	}
	if recs[0].MPPDB != "db1" {
		t.Errorf("record attributed to %s, want the healthy peer db1", recs[0].MPPDB)
	}
	if hedged, wins := r.r.HedgeStats(); hedged != 1 || wins != 1 {
		t.Errorf("hedged=%d peerWins=%d, want 1/1", hedged, wins)
	}
}

// TestHedgeWithoutPeerDegradesGracefully: a gray instance with no eligible
// duplicate target just runs the query itself — no hedge, no drop.
func TestHedgeWithoutPeerDegradesGracefully(t *testing.T) {
	r := hedgeRig(t, 1, 2, tn("a", 2))
	var recs []monitor.QueryRecord
	r.r.OnResult(func(rec monitor.QueryRecord) { recs = append(recs, rec) })
	r.r.SetGrayFlag("db0", true)
	if _, err := r.r.Submit("a", r.cl); err != nil {
		t.Fatal(err)
	}
	r.eng.RunAll()
	if len(recs) != 1 {
		t.Fatalf("%d records, want 1", len(recs))
	}
	if hedged, _ := r.r.HedgeStats(); hedged != 0 {
		t.Errorf("hedged=%d with no peer available", hedged)
	}
}

// TestQuarantineRouting: a quarantined instance is skipped by routing until
// it is the only ready choice left — a query is never dropped for the sake
// of a quarantine.
func TestQuarantineRouting(t *testing.T) {
	r := hedgeRig(t, 2, 2, tn("a", 2), tn("b", 2))
	r.r.SetQuarantine("db0", true)
	db, err := r.r.Submit("a", r.cl)
	if err != nil {
		t.Fatal(err)
	}
	if db == "db0" {
		t.Error("query routed to a quarantined instance")
	}
	r.r.SetQuarantine("db1", true)
	if _, err := r.r.Submit("b", r.cl); err != nil {
		t.Errorf("submit with every instance quarantined dropped: %v", err)
	}
	r.eng.RunAll()
	if r.r.Routed() != 2 {
		t.Errorf("Routed = %d, want 2", r.r.Routed())
	}
}
