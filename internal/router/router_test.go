package router

import (
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/mppdb"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/tenant"
)

// rig builds a group of A MPPDBs with the given tenants deployed everywhere.
type rig struct {
	eng *sim.Engine
	dbs []*mppdb.Instance
	mon *monitor.GroupMonitor
	r   *GroupRouter
	cl  *queries.Class
}

func newRig(t *testing.T, a, nodes int, members ...*tenant.Tenant) *rig {
	t.Helper()
	eng := sim.NewEngine()
	var dbs []*mppdb.Instance
	for i := 0; i < a; i++ {
		db := mppdb.New(eng, "db"+string(rune('0'+i)), nodes)
		for _, m := range members {
			db.DeployTenant(m.ID, m.DataGB)
		}
		dbs = append(dbs, db)
	}
	mon, err := monitor.NewGroup(eng, "tg", a, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewGroup(eng, "tg", dbs, members, mon)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, dbs: dbs, mon: mon, r: r,
		cl: &queries.Class{ID: "q", FixedSec: 1, ScanSecGB: 0.1}}
}

func tn(id string, nodes int) *tenant.Tenant {
	return &tenant.Tenant{ID: id, Nodes: nodes, DataGB: 100 * float64(nodes), Users: 1}
}

func TestRouterBasicFlow(t *testing.T) {
	r := newRig(t, 3, 4, tn("a", 2), tn("b", 2))
	var results []monitor.QueryRecord
	r.r.OnResult(func(rec monitor.QueryRecord) { results = append(results, rec) })

	db, err := r.r.Submit("a", r.cl)
	if err != nil {
		t.Fatal(err)
	}
	if db != "db0" {
		t.Errorf("first query routed to %s, want db0 (free G₀)", db)
	}
	db, err = r.r.Submit("b", r.cl)
	if err != nil {
		t.Fatal(err)
	}
	if db != "db1" {
		t.Errorf("second tenant routed to %s, want db1", db)
	}
	if r.mon.ActiveTenants() != 2 {
		t.Errorf("monitor sees %d active tenants", r.mon.ActiveTenants())
	}
	r.eng.RunAll()
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	for _, rec := range results {
		// Group MPPDBs have 4 nodes; tenants requested 2 → queries run
		// faster than the SLA target.
		if !rec.SLAMet() {
			t.Errorf("query for %s missed SLA: normalized %.2f", rec.Tenant, rec.Normalized())
		}
	}
	if r.r.Routed() != 2 || r.r.Overflowed() != 0 {
		t.Errorf("Routed=%d Overflowed=%d", r.r.Routed(), r.r.Overflowed())
	}
}

func TestRouterAffinity(t *testing.T) {
	r := newRig(t, 3, 2, tn("a", 2))
	first, _ := r.r.Submit("a", r.cl)
	second, _ := r.r.Submit("a", r.cl)
	if first != second {
		t.Errorf("concurrent queries of one tenant split across %s and %s", first, second)
	}
}

func TestRouterOverflowCount(t *testing.T) {
	r := newRig(t, 2, 2, tn("a", 2), tn("b", 2), tn("c", 2))
	r.r.Submit("a", r.cl)
	r.r.Submit("b", r.cl)
	// Third active tenant with A=2 → overflow to busy G₀.
	db, err := r.r.Submit("c", r.cl)
	if err != nil {
		t.Fatal(err)
	}
	if db != "db0" {
		t.Errorf("overflow routed to %s, want db0", db)
	}
	if r.r.Overflowed() != 1 {
		t.Errorf("Overflowed = %d, want 1", r.r.Overflowed())
	}
}

func TestRouterUnknownTenant(t *testing.T) {
	r := newRig(t, 2, 2, tn("a", 2))
	if _, err := r.r.Submit("ghost", r.cl); err == nil {
		t.Error("unknown tenant accepted")
	}
}

func TestNewGroupValidatesDeployment(t *testing.T) {
	eng := sim.NewEngine()
	db := mppdb.New(eng, "db0", 2)
	// Tenant not deployed on the instance.
	if _, err := NewGroup(eng, "g", []*mppdb.Instance{db}, []*tenant.Tenant{tn("a", 2)}, nil); err == nil {
		t.Error("missing deployment accepted")
	}
	if _, err := NewGroup(eng, "g", nil, nil, nil); err == nil {
		t.Error("no MPPDBs accepted")
	}
}

func TestRouterSkipsNonReadyInstances(t *testing.T) {
	r := newRig(t, 3, 2, tn("a", 2), tn("b", 2))
	r.dbs[0].SetState(mppdb.Loading)
	db, err := r.r.Submit("a", r.cl)
	if err != nil {
		t.Fatal(err)
	}
	if db == "db0" {
		t.Error("query routed to a loading MPPDB")
	}
	r.dbs[1].SetState(mppdb.Stopped)
	r.dbs[2].SetState(mppdb.Provisioning)
	if _, err := r.r.Submit("b", r.cl); err == nil {
		t.Error("routing with no ready MPPDB accepted")
	}
}

func TestOverride(t *testing.T) {
	r := newRig(t, 2, 2, tn("hog", 2), tn("b", 2))
	// Dedicated MPPDB for the over-active tenant.
	ded := mppdb.New(r.eng, "dedicated", 2)
	ded.DeployTenant("hog", 200)

	if err := r.r.SetOverride("ghost", ded); err == nil {
		t.Error("override for unknown tenant accepted")
	}
	noData := mppdb.New(r.eng, "noData", 2)
	if err := r.r.SetOverride("hog", noData); err == nil {
		t.Error("override without tenant data accepted")
	}
	loading := mppdb.New(r.eng, "loading", 2)
	loading.DeployTenant("hog", 200)
	loading.SetState(mppdb.Loading)
	if err := r.r.SetOverride("hog", loading); err == nil {
		t.Error("override on non-ready MPPDB accepted")
	}

	if err := r.r.SetOverride("hog", ded); err != nil {
		t.Fatal(err)
	}
	if db, ok := r.r.Override("hog"); !ok || db != ded {
		t.Error("Override lookup wrong")
	}
	got, err := r.r.Submit("hog", r.cl)
	if err != nil {
		t.Fatal(err)
	}
	if got != "dedicated" {
		t.Errorf("overridden tenant routed to %s", got)
	}
	// The monitor no longer counts the excluded tenant.
	if r.mon.ActiveTenants() != 0 {
		t.Errorf("excluded tenant counted: %d", r.mon.ActiveTenants())
	}
	// Other tenants unaffected.
	if db, _ := r.r.Submit("b", r.cl); db == "dedicated" {
		t.Error("regular tenant routed to the dedicated MPPDB")
	}
}

func TestAccessors(t *testing.T) {
	r := newRig(t, 2, 2, tn("a", 2))
	if r.r.Group() != "tg" || r.r.Members() != 1 || !r.r.HasTenant("a") || r.r.HasTenant("x") {
		t.Error("accessors wrong")
	}
	if len(r.r.Instances()) != 2 {
		t.Error("Instances wrong")
	}
}
