// Package router is the run-time Query Router (thesis §3d): it accepts
// tenant queries and routes each to the proper MPPDB of the tenant's group
// according to the TDD routing policy (Algorithm 1), reports query
// completions to the Tenant Activity Monitor, and supports re-pointing
// over-active tenants to dedicated MPPDBs after elastic scaling.
package router

import (
	"fmt"

	"repro/internal/monitor"
	"repro/internal/mppdb"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/tdd"
	"repro/internal/telemetry"
	"repro/internal/tenant"
)

// GroupRouter routes queries for one tenant-group.
type GroupRouter struct {
	eng   *sim.Engine
	group string
	dbs   []*mppdb.Instance // index 0 is the tuning MPPDB G₀
	mon   *monitor.GroupMonitor

	tenants map[string]*tenant.Tenant
	// overrides maps an over-active tenant to the dedicated MPPDB that now
	// serves it exclusively.
	overrides map[string]*mppdb.Instance

	// onResult, when set, observes every completed query.
	onResult func(monitor.QueryRecord)

	routed   int64
	overflow int64 // queries sent to a busy G₀ (Algorithm 1 line 10)

	// Telemetry (optional): routing counters, the group's in-flight gauge,
	// and one causally-linked trace per query (submit → route → execute →
	// complete).
	tel       *telemetry.Hub
	mRouted   *telemetry.Counter
	mOverflow *telemetry.Counter
	mInflight *telemetry.Gauge
}

// NewGroup builds a router over the group's A MPPDB instances. dbs[0] is the
// tuning MPPDB. Every member tenant must already be deployed on every
// instance (the TDD tenant placement).
func NewGroup(eng *sim.Engine, group string, dbs []*mppdb.Instance,
	members []*tenant.Tenant, mon *monitor.GroupMonitor) (*GroupRouter, error) {
	if len(dbs) == 0 {
		return nil, fmt.Errorf("router: group %s has no MPPDBs", group)
	}
	r := &GroupRouter{
		eng:       eng,
		group:     group,
		dbs:       dbs,
		mon:       mon,
		tenants:   make(map[string]*tenant.Tenant, len(members)),
		overrides: make(map[string]*mppdb.Instance),
	}
	for _, m := range members {
		r.tenants[m.ID] = m
		for _, db := range dbs {
			if !db.HasTenant(m.ID) {
				return nil, fmt.Errorf("router: tenant %s not deployed on %s", m.ID, db.ID())
			}
		}
	}
	return r, nil
}

// Group returns the group's identifier.
func (r *GroupRouter) Group() string { return r.group }

// Instances returns the group's MPPDBs (G₀ first).
func (r *GroupRouter) Instances() []*mppdb.Instance { return r.dbs }

// Members returns the number of member tenants.
func (r *GroupRouter) Members() int { return len(r.tenants) }

// HasTenant reports whether the tenant belongs to this group.
func (r *GroupRouter) HasTenant(id string) bool {
	_, ok := r.tenants[id]
	return ok
}

// OnResult registers an observer for completed queries.
func (r *GroupRouter) OnResult(fn func(monitor.QueryRecord)) { r.onResult = fn }

// AddTenant admits a tenant into the group at run time — the live-migration
// cutover path. The tenant's data must already be loaded on every group
// MPPDB (the migration provisions before the cutover flips routing). Like
// all router mutations it must run on the group's engine (inside its clock
// domain): the router itself is not locked.
func (r *GroupRouter) AddTenant(tn *tenant.Tenant) error {
	if _, ok := r.tenants[tn.ID]; ok {
		return nil
	}
	for _, db := range r.dbs {
		if !db.HasTenant(tn.ID) {
			return fmt.Errorf("router: tenant %s not deployed on %s", tn.ID, db.ID())
		}
	}
	r.tenants[tn.ID] = tn
	return nil
}

// RemoveTenant withdraws a tenant from the group at run time (departure or
// migration away): subsequent submits for it fail, while queries already
// executing complete normally — their completion callbacks hold direct
// instance references and never consult the tenant map. In-domain only,
// like AddTenant.
func (r *GroupRouter) RemoveTenant(id string) {
	delete(r.tenants, id)
	delete(r.overrides, id)
}

// SetTelemetry attaches a telemetry hub. A nil hub disables instrumentation.
func (r *GroupRouter) SetTelemetry(h *telemetry.Hub) {
	r.tel = h
	if h == nil {
		return
	}
	r.mRouted = h.Registry.Counter("thrifty_router_routed_total", "group", r.group)
	r.mOverflow = h.Registry.Counter("thrifty_router_overflow_total", "group", r.group)
	r.mInflight = h.Registry.Gauge("thrifty_router_inflight", "group", r.group)
}

// SetOverride directs all future queries of the tenant to a dedicated MPPDB
// (the §5.1 elastic-scaling outcome: "Thrifty routed all the queries to the
// new MPPDB"). The instance must be Ready and hold the tenant's data.
func (r *GroupRouter) SetOverride(tenantID string, db *mppdb.Instance) error {
	if _, ok := r.tenants[tenantID]; !ok {
		return fmt.Errorf("router: tenant %s not in group %s", tenantID, r.group)
	}
	if db.State() != mppdb.Ready {
		return fmt.Errorf("router: override MPPDB %s is %v", db.ID(), db.State())
	}
	if !db.HasTenant(tenantID) {
		return fmt.Errorf("router: override MPPDB %s lacks tenant %s", db.ID(), tenantID)
	}
	r.overrides[tenantID] = db
	if r.mon != nil {
		r.mon.Exclude(tenantID)
	}
	return nil
}

// Override returns the tenant's dedicated MPPDB, if any.
func (r *GroupRouter) Override(tenantID string) (*mppdb.Instance, bool) {
	db, ok := r.overrides[tenantID]
	return db, ok
}

// TenantInFlight returns how many of the tenant's queries are currently
// executing anywhere the router can see (group MPPDBs plus a dedicated
// override instance).
func (r *GroupRouter) TenantInFlight(tenantID string) int {
	n := 0
	for _, db := range r.dbs {
		n += db.TenantRunning(tenantID)
	}
	if db, ok := r.overrides[tenantID]; ok {
		n += db.TenantRunning(tenantID)
	}
	return n
}

// Routed returns the total number of queries routed.
func (r *GroupRouter) Routed() int64 { return r.routed }

// Overflowed returns the number of queries routed to a busy G₀ because all
// MPPDBs were occupied (the potential SLA-violation path).
func (r *GroupRouter) Overflowed() int64 { return r.overflow }

// Submit routes one query for the tenant and starts it on the chosen MPPDB.
// The SLA target defaults to the isolated latency on the tenant's requested
// configuration (the before-consolidation latency, §1). The returned
// instance ID indicates where the query went.
func (r *GroupRouter) Submit(tenantID string, class *queries.Class) (string, error) {
	return r.SubmitWithTarget(tenantID, class, 0)
}

// SubmitWithTarget routes a query with an explicit SLA target — replay uses
// the duration recorded on the tenant's own dedicated MPPDB (which includes
// the tenant's self-contention; that slack is the tenant's own business,
// §4.4). A non-positive target falls back to the isolated latency.
func (r *GroupRouter) SubmitWithTarget(tenantID string, class *queries.Class, slaTarget sim.Time) (string, error) {
	tn, ok := r.tenants[tenantID]
	if !ok {
		return "", fmt.Errorf("router: unknown tenant %s in group %s", tenantID, r.group)
	}
	// One trace per query: a root span spanning submit → complete, with a
	// route child (the Algorithm 1 decision) and an execute child (time on
	// the chosen MPPDB). Under processor sharing there is no queueing
	// phase: a query starts executing the instant it is routed.
	var root, route, exec *telemetry.Span
	if r.tel != nil {
		root = r.tel.Tracer.StartSpan("query",
			"group", r.group, "tenant", tenantID, "class", class.ID)
		route = r.tel.Tracer.StartChild(root.Context(), "route")
	}
	fail := func(err error) (string, error) {
		if root != nil {
			route.Annotate("error", err.Error())
			route.End()
			root.End()
		}
		return "", err
	}
	target, err := r.pick(tenantID)
	if err != nil {
		return fail(err)
	}
	if slaTarget <= 0 {
		slaTarget = sim.Duration(class.Latency(tn.DataGB, tn.Nodes))
	}
	submit := r.eng.Now()
	dbID := target.ID()
	if root != nil {
		route.Annotate("mppdb", dbID)
		route.End()
		exec = r.tel.Tracer.StartChild(root.Context(), "execute", "mppdb", dbID)
	}
	_, err = target.Submit(tenantID, class, func(res mppdb.Result) {
		rec := monitor.QueryRecord{
			Tenant:    tenantID,
			Class:     class,
			Submit:    submit,
			Finish:    res.Finish,
			SLATarget: slaTarget,
			MPPDB:     dbID,
		}
		if r.tel != nil {
			exec.End()
			root.End()
			r.mInflight.Add(-1)
		}
		if r.mon != nil {
			r.mon.QueryFinished(rec)
		}
		if r.onResult != nil {
			r.onResult(rec)
		}
	})
	if err != nil {
		if exec != nil {
			exec.Annotate("error", err.Error())
			exec.End()
			root.End()
		}
		return "", err
	}
	// The completion callback fires via a later engine event, never
	// synchronously inside Submit, so the start is recorded first.
	if r.mon != nil {
		r.mon.QueryStarted(tenantID)
	}
	r.routed++
	if r.tel != nil {
		r.mRouted.Inc()
		r.mInflight.Add(1)
	}
	return dbID, nil
}

// pick chooses the target instance: a dedicated override if present,
// otherwise Algorithm 1 over the group's ready MPPDBs.
func (r *GroupRouter) pick(tenantID string) (*mppdb.Instance, error) {
	if db, ok := r.overrides[tenantID]; ok {
		return db, nil
	}
	// Only Ready instances participate; a replacement MPPDB still loading
	// must not receive queries.
	states := make([]tdd.MPPDBState, 0, len(r.dbs))
	ready := make([]*mppdb.Instance, 0, len(r.dbs))
	for _, db := range r.dbs {
		if db.State() == mppdb.Ready {
			states = append(states, db)
			ready = append(ready, db)
		}
	}
	if len(ready) == 0 {
		return nil, fmt.Errorf("router: group %s has no ready MPPDB", r.group)
	}
	idx, err := tdd.Route(tenantID, states)
	if err != nil {
		return nil, err
	}
	// Detect the overflow path: the chosen MPPDB is busy with other
	// tenants' queries (concurrent processing on G₀).
	chosen := ready[idx]
	if chosen.Busy() && chosen.TenantRunning(tenantID) == 0 {
		r.overflow++
		if r.tel != nil {
			r.mOverflow.Inc()
		}
	}
	return chosen, nil
}
