// Package router is the run-time Query Router (thesis §3d): it accepts
// tenant queries and routes each to the proper MPPDB of the tenant's group
// according to the TDD routing policy (Algorithm 1), reports query
// completions to the Tenant Activity Monitor, and supports re-pointing
// over-active tenants to dedicated MPPDBs after elastic scaling.
//
// The router has two internally equivalent submit paths. When every group
// MPPDB shares one tenant.Interner (how the Deployment Master wires groups),
// the ref path runs: tenants are dense indices, routing state lives in flat
// slices, completions report through one pooled tag table, and a steady-state
// submit allocates nothing. When instances carry private interners (legacy
// unit-test wiring), the router falls back to the original string-keyed path.
// Both paths perform the identical operation sequence, so a same-seed run is
// byte-identical either way.
package router

import (
	"fmt"

	"repro/internal/monitor"
	"repro/internal/mppdb"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/tdd"
	"repro/internal/telemetry"
	"repro/internal/tenant"
)

// override pairs a dedicated MPPDB with the tenant's ref in *that* MPPDB's
// interner (an elastically-added instance may not share the group interner).
type override struct {
	db  *mppdb.Instance
	ref tenant.Ref
}

// noPartner marks a pending slot with no hedged duplicate.
const noPartner = ^uint64(0)

// pending is one in-flight query's completion context, pooled and addressed
// by the tag issued at submit time. A hedged query occupies two slots: the
// primary holds the full accounting context, the hedge slot only what is
// needed to attribute and cancel — both point at each other via partner,
// and whichever completes first wins and withdraws the other.
type pending struct {
	tenantID  string
	class     *queries.Class
	submit    sim.Time
	slaTarget sim.Time
	dbID      string
	root      *telemetry.Span
	exec      *telemetry.Span
	inst      *mppdb.Instance
	partner   uint64
	hedge     bool
}

// GroupRouter routes queries for one tenant-group.
type GroupRouter struct {
	eng   *sim.Engine
	group string
	dbs   []*mppdb.Instance // index 0 is the tuning MPPDB G₀
	mon   *monitor.GroupMonitor

	tenants map[string]*tenant.Tenant
	// overrides maps an over-active tenant to the dedicated MPPDB that now
	// serves it exclusively.
	overrides map[string]*mppdb.Instance

	// Interned fast path (refMode): the group interner shared with every
	// instance, members and overrides indexed by ref, the pooled completion
	// table, and routing scratch space reused across submits.
	in            *tenant.Interner
	refMode       bool
	byRef         []*tenant.Tenant
	overByRef     []override
	pending       []pending
	freeTags      []uint64
	scratchStates []tdd.MPPDBStateRef
	scratchReady  []*mppdb.Instance
	scratchIdx    []int

	// onResult, when set, observes every completed query.
	onResult func(monitor.QueryRecord)
	// onCompletion, when set, observes every real completion with the serving
	// instance — the gray detector's per-instance latency-profile feed (ref
	// mode only; cancelled hedge losers never report).
	onCompletion func(dbID string, res mppdb.Result)

	// Gray-failure response state, indexed parallel to dbs (ref mode only).
	// A gray-flagged instance still receives its routed queries but each is
	// hedged to a healthy peer; a quarantined instance is excluded from
	// routing altogether unless it is the only ready one left.
	grayOn      []bool
	quarantined []bool
	nGray       int
	nQuar       int
	hedges      int64
	hedgeWins   int64

	routed   int64
	overflow int64 // queries sent to a busy G₀ (Algorithm 1 line 10)

	// Telemetry (optional): routing counters, the group's in-flight gauge,
	// and one causally-linked trace per query (submit → route → execute →
	// complete).
	tel       *telemetry.Hub
	mRouted   *telemetry.Counter
	mOverflow *telemetry.Counter
	mInflight *telemetry.Gauge
	mHedged   *telemetry.Counter
	mHedgeWin *telemetry.Counter
}

// NewGroup builds a router over the group's A MPPDB instances. dbs[0] is the
// tuning MPPDB. Every member tenant must already be deployed on every
// instance (the TDD tenant placement).
func NewGroup(eng *sim.Engine, group string, dbs []*mppdb.Instance,
	members []*tenant.Tenant, mon *monitor.GroupMonitor) (*GroupRouter, error) {
	if len(dbs) == 0 {
		return nil, fmt.Errorf("router: group %s has no MPPDBs", group)
	}
	r := &GroupRouter{
		eng:       eng,
		group:     group,
		dbs:       dbs,
		mon:       mon,
		tenants:   make(map[string]*tenant.Tenant, len(members)),
		overrides: make(map[string]*mppdb.Instance),
		in:        dbs[0].Interner(),
		refMode:   true,
	}
	for _, db := range dbs {
		if db.Interner() != r.in {
			// Privately-interned instances: refs are not comparable across
			// the group, so stay on the string path.
			r.refMode = false
			break
		}
	}
	for _, m := range members {
		r.tenants[m.ID] = m
		for _, db := range dbs {
			if !db.HasTenant(m.ID) {
				return nil, fmt.Errorf("router: tenant %s not deployed on %s", m.ID, db.ID())
			}
		}
		if r.refMode {
			r.indexMember(r.in.Intern(m.ID), m)
		}
	}
	if r.refMode {
		for _, db := range dbs {
			db.SetCompletionHandler(r.completed)
		}
	}
	return r, nil
}

// indexMember records a member tenant under its group ref.
func (r *GroupRouter) indexMember(ref tenant.Ref, tn *tenant.Tenant) {
	for int(ref) >= len(r.byRef) {
		r.byRef = append(r.byRef, nil)
		r.overByRef = append(r.overByRef, override{})
	}
	r.byRef[ref] = tn
}

// Group returns the group's identifier.
func (r *GroupRouter) Group() string { return r.group }

// Instances returns the group's MPPDBs (G₀ first).
func (r *GroupRouter) Instances() []*mppdb.Instance { return r.dbs }

// Members returns the number of member tenants.
func (r *GroupRouter) Members() int { return len(r.tenants) }

// Interner returns the group interner in ref mode, nil otherwise.
func (r *GroupRouter) Interner() *tenant.Interner {
	if !r.refMode {
		return nil
	}
	return r.in
}

// HasTenant reports whether the tenant belongs to this group.
func (r *GroupRouter) HasTenant(id string) bool {
	_, ok := r.tenants[id]
	return ok
}

// Ref resolves a member tenant to its group ref (NoRef when the router is
// not in ref mode or the tenant is not a member).
func (r *GroupRouter) Ref(id string) tenant.Ref {
	if !r.refMode {
		return tenant.NoRef
	}
	ref, ok := r.in.Lookup(id)
	if !ok || int(ref) >= len(r.byRef) || r.byRef[ref] == nil {
		return tenant.NoRef
	}
	return ref
}

// OnResult registers an observer for completed queries.
func (r *GroupRouter) OnResult(fn func(monitor.QueryRecord)) { r.onResult = fn }

// AddTenant admits a tenant into the group at run time — the live-migration
// cutover path. The tenant's data must already be loaded on every group
// MPPDB (the migration provisions before the cutover flips routing). Like
// all router mutations it must run on the group's engine (inside its clock
// domain): the router itself is not locked.
func (r *GroupRouter) AddTenant(tn *tenant.Tenant) error {
	if _, ok := r.tenants[tn.ID]; ok {
		return nil
	}
	for _, db := range r.dbs {
		if !db.HasTenant(tn.ID) {
			return fmt.Errorf("router: tenant %s not deployed on %s", tn.ID, db.ID())
		}
	}
	r.tenants[tn.ID] = tn
	if r.refMode {
		r.indexMember(r.in.Intern(tn.ID), tn)
	}
	return nil
}

// RemoveTenant withdraws a tenant from the group at run time (departure or
// migration away): subsequent submits for it fail, while queries already
// executing complete normally — their completion contexts hold direct
// instance references and never consult the tenant index. In-domain only,
// like AddTenant.
func (r *GroupRouter) RemoveTenant(id string) {
	delete(r.tenants, id)
	delete(r.overrides, id)
	if r.refMode {
		if ref, ok := r.in.Lookup(id); ok && int(ref) < len(r.byRef) {
			r.byRef[ref] = nil
			r.overByRef[ref] = override{}
		}
	}
}

// SetTelemetry attaches a telemetry hub. A nil hub disables instrumentation.
func (r *GroupRouter) SetTelemetry(h *telemetry.Hub) {
	r.tel = h
	if h == nil {
		return
	}
	r.mRouted = h.Registry.Counter("thrifty_router_routed_total", "group", r.group)
	r.mOverflow = h.Registry.Counter("thrifty_router_overflow_total", "group", r.group)
	r.mInflight = h.Registry.Gauge("thrifty_router_inflight", "group", r.group)
	r.mHedged = h.Registry.Counter("thrifty_router_hedged_total", "group", r.group)
	r.mHedgeWin = h.Registry.Counter("thrifty_router_hedge_peer_wins_total", "group", r.group)
}

// SetCompletionObserver registers a per-completion observer receiving the
// serving instance's ID and the raw result — the gray detector's feed.
// Effective in ref mode only.
func (r *GroupRouter) SetCompletionObserver(fn func(dbID string, res mppdb.Result)) {
	r.onCompletion = fn
}

// ensureGraySlots sizes the gray/quarantine flag slices to the member set.
func (r *GroupRouter) ensureGraySlots() {
	for len(r.grayOn) < len(r.dbs) {
		r.grayOn = append(r.grayOn, false)
		r.quarantined = append(r.quarantined, false)
	}
}

// dbIndex resolves a group instance ID to its position in dbs (-1 if absent).
func (r *GroupRouter) dbIndex(dbID string) int {
	for i, db := range r.dbs {
		if db.ID() == dbID {
			return i
		}
	}
	return -1
}

// SetGrayFlag marks (or clears) an instance as confirmed-gray: every query
// subsequently routed to it is hedged to a healthy peer. Ref mode only (the
// hedge pairing rides the pooled tag table); no-op otherwise.
func (r *GroupRouter) SetGrayFlag(dbID string, on bool) {
	if !r.refMode {
		return
	}
	i := r.dbIndex(dbID)
	if i < 0 {
		return
	}
	r.ensureGraySlots()
	if r.grayOn[i] == on {
		return
	}
	r.grayOn[i] = on
	if on {
		r.nGray++
	} else {
		r.nGray--
	}
}

// SetQuarantine excludes (or re-admits) an instance from routing — the drain
// stage of the gray-response ladder. A quarantined instance still finishes
// its in-flight queries, and it is re-admitted implicitly if it is the only
// ready instance left, so queries are never dropped. Ref mode only.
func (r *GroupRouter) SetQuarantine(dbID string, on bool) {
	if !r.refMode {
		return
	}
	i := r.dbIndex(dbID)
	if i < 0 {
		return
	}
	r.ensureGraySlots()
	if r.quarantined[i] == on {
		return
	}
	r.quarantined[i] = on
	if on {
		r.nQuar++
	} else {
		r.nQuar--
	}
}

// Quarantined returns how many instances are currently quarantined.
func (r *GroupRouter) Quarantined() int { return r.nQuar }

// HedgeStats returns how many queries were hedged and how many of those
// hedges the peer (not the gray instance) won.
func (r *GroupRouter) HedgeStats() (hedged, peerWins int64) {
	return r.hedges, r.hedgeWins
}

// SetOverride directs all future queries of the tenant to a dedicated MPPDB
// (the §5.1 elastic-scaling outcome: "Thrifty routed all the queries to the
// new MPPDB"). The instance must be Ready and hold the tenant's data.
func (r *GroupRouter) SetOverride(tenantID string, db *mppdb.Instance) error {
	if _, ok := r.tenants[tenantID]; !ok {
		return fmt.Errorf("router: tenant %s not in group %s", tenantID, r.group)
	}
	if db.State() != mppdb.Ready {
		return fmt.Errorf("router: override MPPDB %s is %v", db.ID(), db.State())
	}
	if !db.HasTenant(tenantID) {
		return fmt.Errorf("router: override MPPDB %s lacks tenant %s", db.ID(), tenantID)
	}
	r.overrides[tenantID] = db
	if r.refMode {
		if ref, ok := r.in.Lookup(tenantID); ok && int(ref) < len(r.overByRef) {
			// The override's interner may be private to that instance;
			// record the tenant's ref in *its* namespace.
			dbRef, _ := db.Interner().Lookup(tenantID)
			r.overByRef[ref] = override{db: db, ref: dbRef}
			db.SetCompletionHandler(r.completed)
		}
	}
	if r.mon != nil {
		r.mon.Exclude(tenantID)
	}
	return nil
}

// Override returns the tenant's dedicated MPPDB, if any.
func (r *GroupRouter) Override(tenantID string) (*mppdb.Instance, bool) {
	db, ok := r.overrides[tenantID]
	return db, ok
}

// TenantInFlight returns how many of the tenant's queries are currently
// executing anywhere the router can see (group MPPDBs plus a dedicated
// override instance).
func (r *GroupRouter) TenantInFlight(tenantID string) int {
	n := 0
	for _, db := range r.dbs {
		n += db.TenantRunning(tenantID)
	}
	if db, ok := r.overrides[tenantID]; ok {
		n += db.TenantRunning(tenantID)
	}
	return n
}

// Routed returns the total number of queries routed.
func (r *GroupRouter) Routed() int64 { return r.routed }

// Overflowed returns the number of queries routed to a busy G₀ because all
// MPPDBs were occupied (the potential SLA-violation path).
func (r *GroupRouter) Overflowed() int64 { return r.overflow }

// Submit routes one query for the tenant and starts it on the chosen MPPDB.
// The SLA target defaults to the isolated latency on the tenant's requested
// configuration (the before-consolidation latency, §1). The returned
// instance ID indicates where the query went.
func (r *GroupRouter) Submit(tenantID string, class *queries.Class) (string, error) {
	return r.SubmitWithTarget(tenantID, class, 0)
}

// SubmitWithTarget routes a query with an explicit SLA target — replay uses
// the duration recorded on the tenant's own dedicated MPPDB (which includes
// the tenant's self-contention; that slack is the tenant's own business,
// §4.4). A non-positive target falls back to the isolated latency.
func (r *GroupRouter) SubmitWithTarget(tenantID string, class *queries.Class, slaTarget sim.Time) (string, error) {
	if r.refMode {
		ref, ok := r.in.Lookup(tenantID)
		if !ok || int(ref) >= len(r.byRef) || r.byRef[ref] == nil {
			return "", fmt.Errorf("router: unknown tenant %s in group %s", tenantID, r.group)
		}
		return r.SubmitRef(ref, class, slaTarget)
	}
	return r.submitString(tenantID, class, slaTarget)
}

// acquireTag hands out a pooled completion slot.
func (r *GroupRouter) acquireTag() uint64 {
	if n := len(r.freeTags); n > 0 {
		tag := r.freeTags[n-1]
		r.freeTags = r.freeTags[:n-1]
		return tag
	}
	r.pending = append(r.pending, pending{})
	return uint64(len(r.pending) - 1)
}

// completed is the pooled completion handler shared by every group instance:
// it rebuilds the query record from the tag's pending slot and performs the
// exact observer sequence of the closure path. For a hedged query, whichever
// copy completes first lands here and withdraws its partner before it can
// report — exactly one QueryFinished per logical query, attributed to the
// instance that actually won.
func (r *GroupRouter) completed(res mppdb.Result, tag uint64) {
	p := &r.pending[tag]
	winnerDB := p.dbID
	prim, partnerTag := p, noPartner
	if p.partner != noPartner {
		partnerTag = p.partner
		q := &r.pending[partnerTag]
		// Cancel the slower copy: no completion fires, no sojourn/completed
		// telemetry is observed, no double accounting anywhere downstream.
		if q.inst != nil {
			q.inst.CancelTagged(partnerTag)
		}
		if p.hedge {
			// The duplicate beat the gray instance — the accounting context
			// lives on the primary slot.
			prim = q
			r.hedgeWins++
			if r.tel != nil {
				r.mHedgeWin.Inc()
			}
		}
	}
	rec := monitor.QueryRecord{
		Tenant:    prim.tenantID,
		Class:     prim.class,
		Submit:    prim.submit,
		Finish:    res.Finish,
		SLATarget: prim.slaTarget,
		MPPDB:     winnerDB,
	}
	if r.tel != nil {
		if prim.exec != nil {
			prim.exec.End()
			prim.root.End()
		}
		r.mInflight.Add(-1)
	}
	for _, t := range [2]uint64{tag, partnerTag} {
		if t == noPartner {
			continue
		}
		s := &r.pending[t]
		s.root, s.exec, s.class, s.inst = nil, nil, nil, nil
		s.tenantID, s.dbID = "", ""
		s.partner, s.hedge = noPartner, false
		r.freeTags = append(r.freeTags, t)
	}
	if r.mon != nil {
		r.mon.QueryFinished(rec)
	}
	if r.onResult != nil {
		r.onResult(rec)
	}
	if r.onCompletion != nil {
		r.onCompletion(winnerDB, res)
	}
}

// SubmitRef is the interned hot path: one slice index resolves the tenant,
// Algorithm 1 runs over ref-indexed instance state, and the completion
// context goes into the pooled tag table — no allocation on the steady
// state. Only valid in ref mode (callers obtain refs via Ref or the group
// interner).
func (r *GroupRouter) SubmitRef(ref tenant.Ref, class *queries.Class, slaTarget sim.Time) (string, error) {
	var tn *tenant.Tenant
	if ref >= 0 && int(ref) < len(r.byRef) {
		tn = r.byRef[ref]
	}
	if tn == nil {
		return "", fmt.Errorf("router: unknown tenant %s in group %s", r.in.ID(ref), r.group)
	}
	// One trace per query: a root span spanning submit → complete, with a
	// route child (the Algorithm 1 decision) and an execute child (time on
	// the chosen MPPDB). Under processor sharing there is no queueing
	// phase: a query starts executing the instant it is routed.
	var root, route, exec *telemetry.Span
	if r.tel != nil {
		root = r.tel.Tracer.StartSpan("query",
			"group", r.group, "tenant", tn.ID, "class", class.ID)
		route = r.tel.Tracer.StartChild(root.Context(), "route")
	}
	target, targetRef, targetIdx, err := r.pickRef(ref)
	if err != nil {
		if root != nil {
			route.Annotate("error", err.Error())
			route.End()
			root.End()
		}
		return "", err
	}
	if slaTarget <= 0 {
		slaTarget = sim.Duration(class.Latency(tn.DataGB, tn.Nodes))
	}
	submit := r.eng.Now()
	dbID := target.ID()
	if root != nil {
		route.Annotate("mppdb", dbID)
		route.End()
		exec = r.tel.Tracer.StartChild(root.Context(), "execute", "mppdb", dbID)
	}
	tag := r.acquireTag()
	p := &r.pending[tag]
	p.tenantID = tn.ID
	p.class = class
	p.submit = submit
	p.slaTarget = slaTarget
	p.dbID = dbID
	p.root = root
	p.exec = exec
	p.inst = target
	p.partner = noPartner
	p.hedge = false
	_, err = target.SubmitTagged(targetRef, class, tag)
	if err != nil {
		p.root, p.exec, p.class, p.inst = nil, nil, nil, nil
		p.tenantID, p.dbID = "", ""
		p.partner = noPartner
		r.freeTags = append(r.freeTags, tag)
		if exec != nil {
			exec.Annotate("error", err.Error())
			exec.End()
			root.End()
		}
		return "", err
	}
	// The completion callback fires via a later engine event, never
	// synchronously inside Submit, so the start is recorded first.
	if r.mon != nil {
		r.mon.QueryStarted(tn.ID)
	}
	// Routed to a confirmed-gray instance: duplicate onto a healthy peer.
	if r.nGray > 0 && targetIdx >= 0 && r.grayOn[targetIdx] {
		r.hedgeTo(tag, ref, targetIdx)
	}
	r.routed++
	if r.tel != nil {
		r.mRouted.Inc()
		r.mInflight.Add(1)
	}
	return dbID, nil
}

// hedgePeer picks the healthiest eligible duplicate target for a hedge away
// from dbs[exclude]: Ready, not gray, not quarantined, least loaded, ties to
// the lowest index (deterministic). Returns nil when no peer qualifies.
func (r *GroupRouter) hedgePeer(exclude int) *mppdb.Instance {
	var best *mppdb.Instance
	bestLoad := 0
	for i, db := range r.dbs {
		if i == exclude || db.State() != mppdb.Ready {
			continue
		}
		if i < len(r.grayOn) && (r.grayOn[i] || r.quarantined[i]) {
			continue
		}
		if load := db.Running(); best == nil || load < bestLoad {
			best, bestLoad = db, load
		}
	}
	return best
}

// hedgeTo duplicates the in-flight query in pending[tag] onto a healthy
// peer of dbs[grayIdx]. First completion wins; the loser is cancelled.
func (r *GroupRouter) hedgeTo(tag uint64, ref tenant.Ref, grayIdx int) {
	peer := r.hedgePeer(grayIdx)
	if peer == nil {
		return
	}
	ht := r.acquireTag()
	// acquireTag may grow the pending slice; re-resolve both slots after.
	h, p := &r.pending[ht], &r.pending[tag]
	h.tenantID = p.tenantID
	h.class = p.class
	h.submit = p.submit
	h.slaTarget = p.slaTarget
	h.dbID = peer.ID()
	h.root, h.exec = nil, nil
	h.inst = peer
	h.partner = tag
	h.hedge = true
	if _, err := peer.SubmitHedge(ref, p.class, ht); err != nil {
		h.tenantID, h.dbID, h.class, h.inst = "", "", nil, nil
		h.partner, h.hedge = noPartner, false
		r.freeTags = append(r.freeTags, ht)
		return
	}
	p.partner = ht
	r.hedges++
	if r.tel != nil {
		r.mHedged.Inc()
	}
}

// HedgeInFlight duplicates every un-hedged in-flight query currently running
// on the given instance onto healthy peers — invoked by the gray detector at
// the moment a suspicion is confirmed, so queries already stuck on the slow
// instance get a second chance too. Returns how many hedges were placed.
// Ref mode only.
func (r *GroupRouter) HedgeInFlight(dbID string) int {
	if !r.refMode {
		return 0
	}
	idx := r.dbIndex(dbID)
	if idx < 0 {
		return 0
	}
	r.ensureGraySlots()
	// Collect first: hedging appends pending slots, which may grow the table
	// mid-iteration.
	var tags []uint64
	for tag := range r.pending {
		p := &r.pending[tag]
		if p.tenantID != "" && !p.hedge && p.partner == noPartner && p.dbID == dbID {
			tags = append(tags, uint64(tag))
		}
	}
	n := 0
	for _, tag := range tags {
		ref, ok := r.in.Lookup(r.pending[tag].tenantID)
		if !ok {
			continue
		}
		before := r.pending[tag].partner
		r.hedgeTo(tag, ref, idx)
		if r.pending[tag].partner != before {
			n++
		}
	}
	return n
}

// submitString is the original string-keyed submit, kept for routers whose
// instances do not share an interner.
func (r *GroupRouter) submitString(tenantID string, class *queries.Class, slaTarget sim.Time) (string, error) {
	tn, ok := r.tenants[tenantID]
	if !ok {
		return "", fmt.Errorf("router: unknown tenant %s in group %s", tenantID, r.group)
	}
	var root, route, exec *telemetry.Span
	if r.tel != nil {
		root = r.tel.Tracer.StartSpan("query",
			"group", r.group, "tenant", tenantID, "class", class.ID)
		route = r.tel.Tracer.StartChild(root.Context(), "route")
	}
	fail := func(err error) (string, error) {
		if root != nil {
			route.Annotate("error", err.Error())
			route.End()
			root.End()
		}
		return "", err
	}
	target, err := r.pick(tenantID)
	if err != nil {
		return fail(err)
	}
	if slaTarget <= 0 {
		slaTarget = sim.Duration(class.Latency(tn.DataGB, tn.Nodes))
	}
	submit := r.eng.Now()
	dbID := target.ID()
	if root != nil {
		route.Annotate("mppdb", dbID)
		route.End()
		exec = r.tel.Tracer.StartChild(root.Context(), "execute", "mppdb", dbID)
	}
	_, err = target.Submit(tenantID, class, func(res mppdb.Result) {
		rec := monitor.QueryRecord{
			Tenant:    tenantID,
			Class:     class,
			Submit:    submit,
			Finish:    res.Finish,
			SLATarget: slaTarget,
			MPPDB:     dbID,
		}
		if r.tel != nil {
			exec.End()
			root.End()
			r.mInflight.Add(-1)
		}
		if r.mon != nil {
			r.mon.QueryFinished(rec)
		}
		if r.onResult != nil {
			r.onResult(rec)
		}
	})
	if err != nil {
		if exec != nil {
			exec.Annotate("error", err.Error())
			exec.End()
			root.End()
		}
		return "", err
	}
	if r.mon != nil {
		r.mon.QueryStarted(tenantID)
	}
	r.routed++
	if r.tel != nil {
		r.mRouted.Inc()
		r.mInflight.Add(1)
	}
	return dbID, nil
}

// pickRef chooses the target instance on the ref path: a dedicated override
// if present, otherwise Algorithm 1 over the group's ready MPPDBs. It also
// returns the tenant's ref in the *target's* interner namespace and the
// target's position in dbs (-1 for an override instance).
func (r *GroupRouter) pickRef(ref tenant.Ref) (*mppdb.Instance, tenant.Ref, int, error) {
	if int(ref) < len(r.overByRef) {
		if o := r.overByRef[ref]; o.db != nil {
			return o.db, o.ref, -1, nil
		}
	}
	// Only Ready instances participate; a replacement MPPDB still loading
	// must not receive queries. Quarantined (draining-gray) instances are
	// skipped too, unless that would leave nothing to route to — a query is
	// never dropped for the sake of a quarantine. The scratch slices are
	// reused across submits — the router is single-threaded under its clock
	// domain.
	states := r.scratchStates[:0]
	ready := r.scratchReady[:0]
	readyIdx := r.scratchIdx[:0]
	for i, db := range r.dbs {
		if db.State() != mppdb.Ready {
			continue
		}
		if r.nQuar > 0 && i < len(r.quarantined) && r.quarantined[i] {
			continue
		}
		states = append(states, db)
		ready = append(ready, db)
		readyIdx = append(readyIdx, i)
	}
	if len(ready) == 0 && r.nQuar > 0 {
		for i, db := range r.dbs {
			if db.State() != mppdb.Ready {
				continue
			}
			states = append(states, db)
			ready = append(ready, db)
			readyIdx = append(readyIdx, i)
		}
	}
	r.scratchStates, r.scratchReady, r.scratchIdx = states, ready, readyIdx
	if len(ready) == 0 {
		return nil, tenant.NoRef, -1, fmt.Errorf("router: group %s has no ready MPPDB", r.group)
	}
	idx, err := tdd.RouteRef(ref, states)
	if err != nil {
		return nil, tenant.NoRef, -1, err
	}
	// Detect the overflow path: the chosen MPPDB is busy with other
	// tenants' queries (concurrent processing on G₀).
	chosen := ready[idx]
	if chosen.Busy() && chosen.RefRunning(ref) == 0 {
		r.overflow++
		if r.tel != nil {
			r.mOverflow.Inc()
		}
	}
	return chosen, ref, readyIdx[idx], nil
}

// pick chooses the target instance: a dedicated override if present,
// otherwise Algorithm 1 over the group's ready MPPDBs.
func (r *GroupRouter) pick(tenantID string) (*mppdb.Instance, error) {
	if db, ok := r.overrides[tenantID]; ok {
		return db, nil
	}
	// Only Ready instances participate; a replacement MPPDB still loading
	// must not receive queries.
	states := make([]tdd.MPPDBState, 0, len(r.dbs))
	ready := make([]*mppdb.Instance, 0, len(r.dbs))
	for _, db := range r.dbs {
		if db.State() == mppdb.Ready {
			states = append(states, db)
			ready = append(ready, db)
		}
	}
	if len(ready) == 0 {
		return nil, fmt.Errorf("router: group %s has no ready MPPDB", r.group)
	}
	idx, err := tdd.Route(tenantID, states)
	if err != nil {
		return nil, err
	}
	chosen := ready[idx]
	if chosen.Busy() && chosen.TenantRunning(tenantID) == 0 {
		r.overflow++
		if r.tel != nil {
			r.mOverflow.Inc()
		}
	}
	return chosen, nil
}
