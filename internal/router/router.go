// Package router is the run-time Query Router (thesis §3d): it accepts
// tenant queries and routes each to the proper MPPDB of the tenant's group
// according to the TDD routing policy (Algorithm 1), reports query
// completions to the Tenant Activity Monitor, and supports re-pointing
// over-active tenants to dedicated MPPDBs after elastic scaling.
//
// The router has two internally equivalent submit paths. When every group
// MPPDB shares one tenant.Interner (how the Deployment Master wires groups),
// the ref path runs: tenants are dense indices, routing state lives in flat
// slices, completions report through one pooled tag table, and a steady-state
// submit allocates nothing. When instances carry private interners (legacy
// unit-test wiring), the router falls back to the original string-keyed path.
// Both paths perform the identical operation sequence, so a same-seed run is
// byte-identical either way.
package router

import (
	"fmt"

	"repro/internal/monitor"
	"repro/internal/mppdb"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/tdd"
	"repro/internal/telemetry"
	"repro/internal/tenant"
)

// override pairs a dedicated MPPDB with the tenant's ref in *that* MPPDB's
// interner (an elastically-added instance may not share the group interner).
type override struct {
	db  *mppdb.Instance
	ref tenant.Ref
}

// pending is one in-flight query's completion context, pooled and addressed
// by the tag issued at submit time.
type pending struct {
	tenantID  string
	class     *queries.Class
	submit    sim.Time
	slaTarget sim.Time
	dbID      string
	root      *telemetry.Span
	exec      *telemetry.Span
}

// GroupRouter routes queries for one tenant-group.
type GroupRouter struct {
	eng   *sim.Engine
	group string
	dbs   []*mppdb.Instance // index 0 is the tuning MPPDB G₀
	mon   *monitor.GroupMonitor

	tenants map[string]*tenant.Tenant
	// overrides maps an over-active tenant to the dedicated MPPDB that now
	// serves it exclusively.
	overrides map[string]*mppdb.Instance

	// Interned fast path (refMode): the group interner shared with every
	// instance, members and overrides indexed by ref, the pooled completion
	// table, and routing scratch space reused across submits.
	in            *tenant.Interner
	refMode       bool
	byRef         []*tenant.Tenant
	overByRef     []override
	pending       []pending
	freeTags      []uint64
	scratchStates []tdd.MPPDBStateRef
	scratchReady  []*mppdb.Instance

	// onResult, when set, observes every completed query.
	onResult func(monitor.QueryRecord)

	routed   int64
	overflow int64 // queries sent to a busy G₀ (Algorithm 1 line 10)

	// Telemetry (optional): routing counters, the group's in-flight gauge,
	// and one causally-linked trace per query (submit → route → execute →
	// complete).
	tel       *telemetry.Hub
	mRouted   *telemetry.Counter
	mOverflow *telemetry.Counter
	mInflight *telemetry.Gauge
}

// NewGroup builds a router over the group's A MPPDB instances. dbs[0] is the
// tuning MPPDB. Every member tenant must already be deployed on every
// instance (the TDD tenant placement).
func NewGroup(eng *sim.Engine, group string, dbs []*mppdb.Instance,
	members []*tenant.Tenant, mon *monitor.GroupMonitor) (*GroupRouter, error) {
	if len(dbs) == 0 {
		return nil, fmt.Errorf("router: group %s has no MPPDBs", group)
	}
	r := &GroupRouter{
		eng:       eng,
		group:     group,
		dbs:       dbs,
		mon:       mon,
		tenants:   make(map[string]*tenant.Tenant, len(members)),
		overrides: make(map[string]*mppdb.Instance),
		in:        dbs[0].Interner(),
		refMode:   true,
	}
	for _, db := range dbs {
		if db.Interner() != r.in {
			// Privately-interned instances: refs are not comparable across
			// the group, so stay on the string path.
			r.refMode = false
			break
		}
	}
	for _, m := range members {
		r.tenants[m.ID] = m
		for _, db := range dbs {
			if !db.HasTenant(m.ID) {
				return nil, fmt.Errorf("router: tenant %s not deployed on %s", m.ID, db.ID())
			}
		}
		if r.refMode {
			r.indexMember(r.in.Intern(m.ID), m)
		}
	}
	if r.refMode {
		for _, db := range dbs {
			db.SetCompletionHandler(r.completed)
		}
	}
	return r, nil
}

// indexMember records a member tenant under its group ref.
func (r *GroupRouter) indexMember(ref tenant.Ref, tn *tenant.Tenant) {
	for int(ref) >= len(r.byRef) {
		r.byRef = append(r.byRef, nil)
		r.overByRef = append(r.overByRef, override{})
	}
	r.byRef[ref] = tn
}

// Group returns the group's identifier.
func (r *GroupRouter) Group() string { return r.group }

// Instances returns the group's MPPDBs (G₀ first).
func (r *GroupRouter) Instances() []*mppdb.Instance { return r.dbs }

// Members returns the number of member tenants.
func (r *GroupRouter) Members() int { return len(r.tenants) }

// Interner returns the group interner in ref mode, nil otherwise.
func (r *GroupRouter) Interner() *tenant.Interner {
	if !r.refMode {
		return nil
	}
	return r.in
}

// HasTenant reports whether the tenant belongs to this group.
func (r *GroupRouter) HasTenant(id string) bool {
	_, ok := r.tenants[id]
	return ok
}

// Ref resolves a member tenant to its group ref (NoRef when the router is
// not in ref mode or the tenant is not a member).
func (r *GroupRouter) Ref(id string) tenant.Ref {
	if !r.refMode {
		return tenant.NoRef
	}
	ref, ok := r.in.Lookup(id)
	if !ok || int(ref) >= len(r.byRef) || r.byRef[ref] == nil {
		return tenant.NoRef
	}
	return ref
}

// OnResult registers an observer for completed queries.
func (r *GroupRouter) OnResult(fn func(monitor.QueryRecord)) { r.onResult = fn }

// AddTenant admits a tenant into the group at run time — the live-migration
// cutover path. The tenant's data must already be loaded on every group
// MPPDB (the migration provisions before the cutover flips routing). Like
// all router mutations it must run on the group's engine (inside its clock
// domain): the router itself is not locked.
func (r *GroupRouter) AddTenant(tn *tenant.Tenant) error {
	if _, ok := r.tenants[tn.ID]; ok {
		return nil
	}
	for _, db := range r.dbs {
		if !db.HasTenant(tn.ID) {
			return fmt.Errorf("router: tenant %s not deployed on %s", tn.ID, db.ID())
		}
	}
	r.tenants[tn.ID] = tn
	if r.refMode {
		r.indexMember(r.in.Intern(tn.ID), tn)
	}
	return nil
}

// RemoveTenant withdraws a tenant from the group at run time (departure or
// migration away): subsequent submits for it fail, while queries already
// executing complete normally — their completion contexts hold direct
// instance references and never consult the tenant index. In-domain only,
// like AddTenant.
func (r *GroupRouter) RemoveTenant(id string) {
	delete(r.tenants, id)
	delete(r.overrides, id)
	if r.refMode {
		if ref, ok := r.in.Lookup(id); ok && int(ref) < len(r.byRef) {
			r.byRef[ref] = nil
			r.overByRef[ref] = override{}
		}
	}
}

// SetTelemetry attaches a telemetry hub. A nil hub disables instrumentation.
func (r *GroupRouter) SetTelemetry(h *telemetry.Hub) {
	r.tel = h
	if h == nil {
		return
	}
	r.mRouted = h.Registry.Counter("thrifty_router_routed_total", "group", r.group)
	r.mOverflow = h.Registry.Counter("thrifty_router_overflow_total", "group", r.group)
	r.mInflight = h.Registry.Gauge("thrifty_router_inflight", "group", r.group)
}

// SetOverride directs all future queries of the tenant to a dedicated MPPDB
// (the §5.1 elastic-scaling outcome: "Thrifty routed all the queries to the
// new MPPDB"). The instance must be Ready and hold the tenant's data.
func (r *GroupRouter) SetOverride(tenantID string, db *mppdb.Instance) error {
	if _, ok := r.tenants[tenantID]; !ok {
		return fmt.Errorf("router: tenant %s not in group %s", tenantID, r.group)
	}
	if db.State() != mppdb.Ready {
		return fmt.Errorf("router: override MPPDB %s is %v", db.ID(), db.State())
	}
	if !db.HasTenant(tenantID) {
		return fmt.Errorf("router: override MPPDB %s lacks tenant %s", db.ID(), tenantID)
	}
	r.overrides[tenantID] = db
	if r.refMode {
		if ref, ok := r.in.Lookup(tenantID); ok && int(ref) < len(r.overByRef) {
			// The override's interner may be private to that instance;
			// record the tenant's ref in *its* namespace.
			dbRef, _ := db.Interner().Lookup(tenantID)
			r.overByRef[ref] = override{db: db, ref: dbRef}
			db.SetCompletionHandler(r.completed)
		}
	}
	if r.mon != nil {
		r.mon.Exclude(tenantID)
	}
	return nil
}

// Override returns the tenant's dedicated MPPDB, if any.
func (r *GroupRouter) Override(tenantID string) (*mppdb.Instance, bool) {
	db, ok := r.overrides[tenantID]
	return db, ok
}

// TenantInFlight returns how many of the tenant's queries are currently
// executing anywhere the router can see (group MPPDBs plus a dedicated
// override instance).
func (r *GroupRouter) TenantInFlight(tenantID string) int {
	n := 0
	for _, db := range r.dbs {
		n += db.TenantRunning(tenantID)
	}
	if db, ok := r.overrides[tenantID]; ok {
		n += db.TenantRunning(tenantID)
	}
	return n
}

// Routed returns the total number of queries routed.
func (r *GroupRouter) Routed() int64 { return r.routed }

// Overflowed returns the number of queries routed to a busy G₀ because all
// MPPDBs were occupied (the potential SLA-violation path).
func (r *GroupRouter) Overflowed() int64 { return r.overflow }

// Submit routes one query for the tenant and starts it on the chosen MPPDB.
// The SLA target defaults to the isolated latency on the tenant's requested
// configuration (the before-consolidation latency, §1). The returned
// instance ID indicates where the query went.
func (r *GroupRouter) Submit(tenantID string, class *queries.Class) (string, error) {
	return r.SubmitWithTarget(tenantID, class, 0)
}

// SubmitWithTarget routes a query with an explicit SLA target — replay uses
// the duration recorded on the tenant's own dedicated MPPDB (which includes
// the tenant's self-contention; that slack is the tenant's own business,
// §4.4). A non-positive target falls back to the isolated latency.
func (r *GroupRouter) SubmitWithTarget(tenantID string, class *queries.Class, slaTarget sim.Time) (string, error) {
	if r.refMode {
		ref, ok := r.in.Lookup(tenantID)
		if !ok || int(ref) >= len(r.byRef) || r.byRef[ref] == nil {
			return "", fmt.Errorf("router: unknown tenant %s in group %s", tenantID, r.group)
		}
		return r.SubmitRef(ref, class, slaTarget)
	}
	return r.submitString(tenantID, class, slaTarget)
}

// acquireTag hands out a pooled completion slot.
func (r *GroupRouter) acquireTag() uint64 {
	if n := len(r.freeTags); n > 0 {
		tag := r.freeTags[n-1]
		r.freeTags = r.freeTags[:n-1]
		return tag
	}
	r.pending = append(r.pending, pending{})
	return uint64(len(r.pending) - 1)
}

// completed is the pooled completion handler shared by every group instance:
// it rebuilds the query record from the tag's pending slot and performs the
// exact observer sequence of the closure path.
func (r *GroupRouter) completed(res mppdb.Result, tag uint64) {
	p := &r.pending[tag]
	rec := monitor.QueryRecord{
		Tenant:    p.tenantID,
		Class:     p.class,
		Submit:    p.submit,
		Finish:    res.Finish,
		SLATarget: p.slaTarget,
		MPPDB:     p.dbID,
	}
	if r.tel != nil {
		p.exec.End()
		p.root.End()
		r.mInflight.Add(-1)
	}
	p.root, p.exec, p.class = nil, nil, nil
	p.tenantID, p.dbID = "", ""
	r.freeTags = append(r.freeTags, tag)
	if r.mon != nil {
		r.mon.QueryFinished(rec)
	}
	if r.onResult != nil {
		r.onResult(rec)
	}
}

// SubmitRef is the interned hot path: one slice index resolves the tenant,
// Algorithm 1 runs over ref-indexed instance state, and the completion
// context goes into the pooled tag table — no allocation on the steady
// state. Only valid in ref mode (callers obtain refs via Ref or the group
// interner).
func (r *GroupRouter) SubmitRef(ref tenant.Ref, class *queries.Class, slaTarget sim.Time) (string, error) {
	var tn *tenant.Tenant
	if ref >= 0 && int(ref) < len(r.byRef) {
		tn = r.byRef[ref]
	}
	if tn == nil {
		return "", fmt.Errorf("router: unknown tenant %s in group %s", r.in.ID(ref), r.group)
	}
	// One trace per query: a root span spanning submit → complete, with a
	// route child (the Algorithm 1 decision) and an execute child (time on
	// the chosen MPPDB). Under processor sharing there is no queueing
	// phase: a query starts executing the instant it is routed.
	var root, route, exec *telemetry.Span
	if r.tel != nil {
		root = r.tel.Tracer.StartSpan("query",
			"group", r.group, "tenant", tn.ID, "class", class.ID)
		route = r.tel.Tracer.StartChild(root.Context(), "route")
	}
	target, targetRef, err := r.pickRef(ref)
	if err != nil {
		if root != nil {
			route.Annotate("error", err.Error())
			route.End()
			root.End()
		}
		return "", err
	}
	if slaTarget <= 0 {
		slaTarget = sim.Duration(class.Latency(tn.DataGB, tn.Nodes))
	}
	submit := r.eng.Now()
	dbID := target.ID()
	if root != nil {
		route.Annotate("mppdb", dbID)
		route.End()
		exec = r.tel.Tracer.StartChild(root.Context(), "execute", "mppdb", dbID)
	}
	tag := r.acquireTag()
	p := &r.pending[tag]
	p.tenantID = tn.ID
	p.class = class
	p.submit = submit
	p.slaTarget = slaTarget
	p.dbID = dbID
	p.root = root
	p.exec = exec
	_, err = target.SubmitTagged(targetRef, class, tag)
	if err != nil {
		p.root, p.exec, p.class = nil, nil, nil
		p.tenantID, p.dbID = "", ""
		r.freeTags = append(r.freeTags, tag)
		if exec != nil {
			exec.Annotate("error", err.Error())
			exec.End()
			root.End()
		}
		return "", err
	}
	// The completion callback fires via a later engine event, never
	// synchronously inside Submit, so the start is recorded first.
	if r.mon != nil {
		r.mon.QueryStarted(tn.ID)
	}
	r.routed++
	if r.tel != nil {
		r.mRouted.Inc()
		r.mInflight.Add(1)
	}
	return dbID, nil
}

// submitString is the original string-keyed submit, kept for routers whose
// instances do not share an interner.
func (r *GroupRouter) submitString(tenantID string, class *queries.Class, slaTarget sim.Time) (string, error) {
	tn, ok := r.tenants[tenantID]
	if !ok {
		return "", fmt.Errorf("router: unknown tenant %s in group %s", tenantID, r.group)
	}
	var root, route, exec *telemetry.Span
	if r.tel != nil {
		root = r.tel.Tracer.StartSpan("query",
			"group", r.group, "tenant", tenantID, "class", class.ID)
		route = r.tel.Tracer.StartChild(root.Context(), "route")
	}
	fail := func(err error) (string, error) {
		if root != nil {
			route.Annotate("error", err.Error())
			route.End()
			root.End()
		}
		return "", err
	}
	target, err := r.pick(tenantID)
	if err != nil {
		return fail(err)
	}
	if slaTarget <= 0 {
		slaTarget = sim.Duration(class.Latency(tn.DataGB, tn.Nodes))
	}
	submit := r.eng.Now()
	dbID := target.ID()
	if root != nil {
		route.Annotate("mppdb", dbID)
		route.End()
		exec = r.tel.Tracer.StartChild(root.Context(), "execute", "mppdb", dbID)
	}
	_, err = target.Submit(tenantID, class, func(res mppdb.Result) {
		rec := monitor.QueryRecord{
			Tenant:    tenantID,
			Class:     class,
			Submit:    submit,
			Finish:    res.Finish,
			SLATarget: slaTarget,
			MPPDB:     dbID,
		}
		if r.tel != nil {
			exec.End()
			root.End()
			r.mInflight.Add(-1)
		}
		if r.mon != nil {
			r.mon.QueryFinished(rec)
		}
		if r.onResult != nil {
			r.onResult(rec)
		}
	})
	if err != nil {
		if exec != nil {
			exec.Annotate("error", err.Error())
			exec.End()
			root.End()
		}
		return "", err
	}
	if r.mon != nil {
		r.mon.QueryStarted(tenantID)
	}
	r.routed++
	if r.tel != nil {
		r.mRouted.Inc()
		r.mInflight.Add(1)
	}
	return dbID, nil
}

// pickRef chooses the target instance on the ref path: a dedicated override
// if present, otherwise Algorithm 1 over the group's ready MPPDBs. It also
// returns the tenant's ref in the *target's* interner namespace.
func (r *GroupRouter) pickRef(ref tenant.Ref) (*mppdb.Instance, tenant.Ref, error) {
	if int(ref) < len(r.overByRef) {
		if o := r.overByRef[ref]; o.db != nil {
			return o.db, o.ref, nil
		}
	}
	// Only Ready instances participate; a replacement MPPDB still loading
	// must not receive queries. The scratch slices are reused across
	// submits — the router is single-threaded under its clock domain.
	states := r.scratchStates[:0]
	ready := r.scratchReady[:0]
	for _, db := range r.dbs {
		if db.State() == mppdb.Ready {
			states = append(states, db)
			ready = append(ready, db)
		}
	}
	r.scratchStates, r.scratchReady = states, ready
	if len(ready) == 0 {
		return nil, tenant.NoRef, fmt.Errorf("router: group %s has no ready MPPDB", r.group)
	}
	idx, err := tdd.RouteRef(ref, states)
	if err != nil {
		return nil, tenant.NoRef, err
	}
	// Detect the overflow path: the chosen MPPDB is busy with other
	// tenants' queries (concurrent processing on G₀).
	chosen := ready[idx]
	if chosen.Busy() && chosen.RefRunning(ref) == 0 {
		r.overflow++
		if r.tel != nil {
			r.mOverflow.Inc()
		}
	}
	return chosen, ref, nil
}

// pick chooses the target instance: a dedicated override if present,
// otherwise Algorithm 1 over the group's ready MPPDBs.
func (r *GroupRouter) pick(tenantID string) (*mppdb.Instance, error) {
	if db, ok := r.overrides[tenantID]; ok {
		return db, nil
	}
	// Only Ready instances participate; a replacement MPPDB still loading
	// must not receive queries.
	states := make([]tdd.MPPDBState, 0, len(r.dbs))
	ready := make([]*mppdb.Instance, 0, len(r.dbs))
	for _, db := range r.dbs {
		if db.State() == mppdb.Ready {
			states = append(states, db)
			ready = append(ready, db)
		}
	}
	if len(ready) == 0 {
		return nil, fmt.Errorf("router: group %s has no ready MPPDB", r.group)
	}
	idx, err := tdd.Route(tenantID, states)
	if err != nil {
		return nil, err
	}
	chosen := ready[idx]
	if chosen.Busy() && chosen.TenantRunning(tenantID) == 0 {
		r.overflow++
		if r.tel != nil {
			r.mOverflow.Inc()
		}
	}
	return chosen, nil
}
