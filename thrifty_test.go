package thrifty

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// smallWorkload generates a fast testbed shared by the facade tests.
func smallWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := GenerateWorkload(WorkloadConfig{
		Tenants:          40,
		Theta:            0.8,
		Sizes:            []int{2, 4},
		Days:             7,
		SessionsPerClass: 4,
		Seed:             5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateWorkloadDefaultsAndValidation(t *testing.T) {
	if _, err := GenerateWorkload(WorkloadConfig{Tenants: 0}); err == nil {
		t.Error("zero tenants accepted")
	}
	w := smallWorkload(t)
	if len(w.Logs) != 40 {
		t.Fatalf("%d logs", len(w.Logs))
	}
	if w.Horizon != 7*sim.Day {
		t.Errorf("horizon = %v", w.Horizon)
	}
	if len(w.Tenants()) != 40 {
		t.Error("tenant index wrong")
	}
}

func TestEndToEndPipeline(t *testing.T) {
	w := smallWorkload(t)
	cfg := DefaultPlanConfig()
	cfg.R = 2
	plan, err := PlanDeployment(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Groups) == 0 {
		t.Fatal("no groups planned")
	}
	if plan.Effectiveness() <= 0 {
		t.Errorf("effectiveness = %v", plan.Effectiveness())
	}
	sys, err := Deploy(w, plan, DeployOptions{Immediate: true, SpareNodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Deployment.NodesUsed() != plan.NodesUsed() {
		t.Errorf("deployed %d nodes, plan %d", sys.Deployment.NodesUsed(), plan.NodesUsed())
	}
	rep, err := sys.Replay(ReplayOptions{From: 0, To: 2 * sim.Day})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted == 0 || len(rep.Records) == 0 {
		t.Fatalf("replay did nothing: %+v", rep)
	}
	if att := rep.SLAAttainment(); att < 0.95 {
		t.Errorf("SLA attainment %v", att)
	}
}

func TestDeployDomainsAndTriage(t *testing.T) {
	w := smallWorkload(t)
	cfg := DefaultPlanConfig()
	cfg.R = 2
	plan, err := PlanDeployment(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := DefaultRecoveryConfig()
	tcfg := DefaultTriageConfig()
	sys, err := Deploy(w, plan, DeployOptions{
		Immediate:  true,
		SpareNodes: 8,
		Domains:    3,
		Recovery:   &rcfg,
		Triage:     &tcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Pool.Domains() != 3 {
		t.Fatalf("pool domains = %d", sys.Pool.Domains())
	}
	// Spread placement puts a group's replica instances in different
	// domains: no replicated group may have all its instances in one rack.
	for _, g := range sys.Deployment.Groups() {
		if len(g.Instances) < 2 {
			continue
		}
		span := map[int]bool{}
		for _, inst := range g.Instances {
			for _, d := range sys.Pool.OwnerDomains(inst.ID()) {
				span[d] = true
			}
		}
		if len(span) < 2 {
			t.Fatalf("group %s collapsed into %d domain(s)", g.Plan.ID, len(span))
		}
	}
	rep, err := sys.Replay(ReplayOptions{From: 0, To: sim.Day})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted == 0 {
		t.Fatalf("replay did nothing: %+v", rep)
	}
}

func TestSystemHandler(t *testing.T) {
	w := smallWorkload(t)
	plan, err := PlanDeployment(w, DefaultPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Deploy(w, plan, DeployOptions{Immediate: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Handler(ServeOptions{TimeScale: 120})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Effectiveness float64 `json:"effectiveness"`
		Groups        []any   `json:"groups"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Groups) != len(plan.Groups) {
		t.Errorf("plan endpoint groups = %d, want %d", len(out.Groups), len(plan.Groups))
	}
}

func TestVariantWorkloads(t *testing.T) {
	w, err := GenerateWorkload(WorkloadConfig{
		Tenants:          30,
		Sizes:            []int{2},
		Days:             7,
		SessionsPerClass: 3,
		Variant:          workload.VariantSingleZoneNoLunch,
		Seed:             9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tl := range w.Logs {
		if tl.Tenant.ZoneOffsetHours != 0 {
			t.Fatalf("single-zone variant placed tenant at %+d", tl.Tenant.ZoneOffsetHours)
		}
	}
}

func TestReconsolidateFacade(t *testing.T) {
	w := smallWorkload(t)
	cfg := DefaultPlanConfig()
	prev, err := PlanDeployment(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No churn: everything kept.
	next, rep, err := Reconsolidate(w, prev, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KeptGroups != len(prev.Groups) || rep.RepackedTenants != 0 {
		t.Errorf("stable cycle churned: %+v", rep)
	}
	if next.NodesUsed() != prev.NodesUsed() {
		t.Errorf("node usage drifted: %d vs %d", next.NodesUsed(), prev.NodesUsed())
	}
	// Flag one group: its members get repacked.
	flagged := prev.Groups[0].ID
	next2, rep2, err := Reconsolidate(w, prev, cfg, []string{flagged})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.RepackedTenants != len(prev.Groups[0].TenantIDs) {
		t.Errorf("repacked %d, want %d", rep2.RepackedTenants, len(prev.Groups[0].TenantIDs))
	}
	for _, id := range prev.Groups[0].TenantIDs {
		if _, ok := next2.Group(id); !ok {
			t.Errorf("tenant %s lost in reconsolidation", id)
		}
	}
}
