// Routing service: run the MPPDBaaS HTTP front end in-process, register a
// pending tenant, submit queries for several tenants over HTTP, and inspect
// where the TDD router placed them and how they performed.
//
//	go run ./examples/routing_service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	thrifty "repro"
	"repro/internal/service"
)

func main() {
	w, err := thrifty.GenerateWorkload(thrifty.WorkloadConfig{
		Tenants:          30,
		Days:             7,
		SessionsPerClass: 6,
		Seed:             3,
	})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := thrifty.PlanDeployment(w, thrifty.DefaultPlanConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys, err := thrifty.Deploy(w, plan, thrifty.DeployOptions{Immediate: true, SpareNodes: 8})
	if err != nil {
		log.Fatal(err)
	}
	// 600× time scale: a ~5 s analytical query completes in ~8 ms of wall
	// time, so this demo finishes quickly.
	h, err := sys.Handler(thrifty.ServeOptions{TimeScale: 600})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	fmt.Println("MPPDBaaS serving on", srv.URL)

	// Inspect the plan.
	var planOut struct {
		NodesUsed      int     `json:"nodes_used"`
		RequestedNodes int     `json:"requested_nodes"`
		Effectiveness  float64 `json:"effectiveness"`
	}
	getJSON(srv.URL+"/v1/plan", &planOut)
	fmt.Printf("plan: %d of %d nodes (%.1f%% saved)\n\n",
		planOut.NodesUsed, planOut.RequestedNodes, 100*planOut.Effectiveness)

	// Submit queries for three tenants.
	tenants := []string{"T0000", "T0001", "T0002"}
	for _, tn := range tenants {
		var acc map[string]any
		postJSON(srv.URL+"/v1/queries", service.SubmitRequest{Tenant: tn, Query: "TPCH-Q1"}, &acc)
		fmt.Printf("%s: TPCH-Q1 routed to %v\n", tn, acc["routed_to"])
	}

	// Register a new tenant — it is queued for the next consolidation cycle.
	var reg map[string]any
	postJSON(srv.URL+"/v1/tenants", service.PendingTenant{ID: "acme-corp", Nodes: 8, Suite: "TPC-H"}, &reg)
	fmt.Printf("\nregistered acme-corp: %v (%v pending)\n", reg["status"], reg["pending"])

	// Wait a moment of wall time so the virtual clock advances past the
	// query completions, then fetch the records.
	time.Sleep(300 * time.Millisecond)
	for _, tn := range tenants {
		var recs []struct {
			Query      string  `json:"query"`
			MPPDB      string  `json:"mppdb"`
			LatencySec float64 `json:"latency_sec"`
			Normalized float64 `json:"normalized"`
			SLAMet     bool    `json:"sla_met"`
		}
		getJSON(srv.URL+"/v1/records?tenant="+tn, &recs)
		for _, r := range recs {
			fmt.Printf("%s: %s on %s took %.1fs (%.2f× SLA target, met=%v)\n",
				tn, r.Query, r.MPPDB, r.LatencySec, r.Normalized, r.SLAMet)
		}
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func postJSON(url string, body, out any) {
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
