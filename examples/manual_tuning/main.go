// Manual tuning (§6): instead of letting elastic scaling start a whole new
// MPPDB for a marginal SLA dip, the administrator widens the tuning MPPDB
// G₀ by a couple of nodes (U = n₁ + k). Overflow queries — the ones routed
// to a busy G₀ when more than A tenants are active — then run with extra
// parallelism and can still meet their SLA empirically (the paper's
// "point C" effect from Fig 1.1b).
//
// This example deploys the same tenant-group twice, with U = n₁ and with
// U = n₁ + 4, drives it into overflow with a take-over, and compares the
// overflow queries' outcomes.
//
//	go run ./examples/manual_tuning
package main

import (
	"fmt"
	"log"
	"time"

	thrifty "repro"
	"repro/internal/sim"
)

func main() {
	for _, uextra := range []int{0, 4} {
		w, err := thrifty.GenerateWorkload(thrifty.WorkloadConfig{
			Tenants:          120,
			Days:             5,
			SessionsPerClass: 8,
			Seed:             21,
		})
		if err != nil {
			log.Fatal(err)
		}
		pcfg := thrifty.DefaultPlanConfig()
		pcfg.UExtra = uextra
		plan, err := thrifty.PlanDeployment(w, pcfg)
		if err != nil {
			log.Fatal(err)
		}
		// Biggest group, hammered tenant.
		pick := plan.Groups[0]
		for _, g := range plan.Groups {
			if len(g.TenantIDs) > len(pick.TenantIDs) {
				pick = g
			}
		}
		sys, err := thrifty.Deploy(w, plan, thrifty.DeployOptions{Immediate: true, SpareNodes: 16})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.Replay(thrifty.ReplayOptions{
			From: 0,
			To:   3 * sim.Day,
			TakeOver: &thrifty.TakeOver{
				Tenant:   pick.TenantIDs[0],
				Start:    12 * sim.Hour,
				Interval: 3 * time.Second,
				ClassID:  "TPCH-Q1",
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		// How did the *other* tenants' queries on G₀ fare? (The hammered
		// tenant's own queries contend with themselves by design.)
		victim := pick.TenantIDs[0]
		for _, g := range sys.Deployment.Groups() {
			if g.Plan.ID != pick.ID {
				continue
			}
			var onG0, missed int
			for _, r := range g.Monitor.Records() {
				if r.Tenant == victim || r.MPPDB != g.Instances[0].ID() {
					continue
				}
				onG0++
				if !r.SLAMet() {
					missed++
				}
			}
			fmt.Printf("U = n₁+%d (G₀ has %d nodes): %d bystander queries ran on G₀, "+
				"%d missed their SLA; group attainment %.2f%%\n",
				uextra, g.Plan.Design.U, onG0, missed, 100*rep.SLAAttainment())
		}
	}
	fmt.Println("\nWith the wider G₀, queries that overflow to a busy tuning MPPDB get")
	fmt.Println("more parallelism and more of them still meet the latency SLA —")
	fmt.Println("the administrator traded 4 nodes for fewer elastic-scaling events.")
}
