// Quickstart: generate a small tenant population, plan a consolidated
// deployment, bring it up on the simulated cluster, and replay a day of
// queries — the whole Thrifty pipeline in one file.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	thrifty "repro"
	"repro/internal/sim"
)

func main() {
	// 1. Generate the testbed: 60 tenants with 7 days of office-hour
	//    activity (the paper's §7.1 methodology, scaled down).
	w, err := thrifty.GenerateWorkload(thrifty.WorkloadConfig{
		Tenants:          60,
		Days:             7,
		SessionsPerClass: 8,
		Seed:             42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d tenants, %d-day activity history\n", len(w.Logs), 7)

	// 2. Plan: replication factor 3, 99.9% SLA guarantee, 10 s epochs.
	plan, err := thrifty.PlanDeployment(w, thrifty.DefaultPlanConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d tenant-groups, %d of %d requested nodes (%.1f%% saved)\n",
		len(plan.Groups), plan.NodesUsed(), plan.RequestedNodes, 100*plan.Effectiveness())
	for _, g := range plan.Groups[:min(3, len(plan.Groups))] {
		fmt.Printf("  %s: %d tenants on %d MPPDBs × %d nodes (TTP %.4f)\n",
			g.ID, len(g.TenantIDs), g.Design.A, g.Design.N1, g.TTP)
	}

	// 3. Deploy on a simulated cluster (instantly ready).
	sys, err := thrifty.Deploy(w, plan, thrifty.DeployOptions{Immediate: true, SpareNodes: 16})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Replay the first day of logged queries through the query router.
	rep, err := sys.Replay(thrifty.ReplayOptions{From: 0, To: sim.Day})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d queries: %.2f%% met their latency SLA\n",
		len(rep.Records), 100*rep.SLAAttainment())
	for _, g := range sys.Deployment.Groups()[:min(3, len(sys.Deployment.Groups()))] {
		fmt.Printf("  %s: RT-TTP %.4f, %d queries routed, %d overflowed to G0\n",
			g.Plan.ID, g.Monitor.RTTTP(), g.Router.Routed(), g.Router.Overflowed())
	}
}
