// Elastic scaling: the §7.5 / Figure 7.7 scenario. One tenant-group is
// deployed and its logged activity replayed; partway in we "take over" a
// tenant and submit queries continuously on its behalf. With the scaler
// armed, Thrifty detects the RT-TTP drop, identifies the over-active
// tenant, provisions a dedicated MPPDB (paying realistic startup +
// parallel-bulk-load time), and re-points the tenant — the group's RT-TTP
// recovers.
//
// The Fig 7.7 narrative below is reconstructed entirely from the telemetry
// subsystem: the timeline comes from the deployment's SLA-event stream (the
// same events GET /v1/events serves) and the closing per-tenant attainment
// from the SLA account behind GET /v1/slo — not from bespoke experiment
// bookkeeping.
//
//	go run ./examples/elastic_scaling
package main

import (
	"fmt"
	"log"
	"time"

	thrifty "repro"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func main() {
	w, err := thrifty.GenerateWorkload(thrifty.WorkloadConfig{
		Tenants:          120,
		Days:             7,
		SessionsPerClass: 8,
		Seed:             11,
	})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := thrifty.PlanDeployment(w, thrifty.DefaultPlanConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Pick the biggest group and its first tenant as the victim.
	pick := plan.Groups[0]
	for _, g := range plan.Groups {
		if len(g.TenantIDs) > len(pick.TenantIDs) {
			pick = g
		}
	}
	victim := pick.TenantIDs[0]
	fmt.Printf("group %s: %d tenants on %d × %d-node MPPDBs; taking over %s at day 1\n",
		pick.ID, len(pick.TenantIDs), pick.Design.A, pick.Design.N1, victim)

	sys, err := thrifty.Deploy(w, plan, thrifty.DeployOptions{
		Immediate:    true,
		ParallelLoad: true,
		SpareNodes:   64,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Subscribe to the SLA-event stream before the replay starts, exactly
	// as a live dashboard would against /v1/events.
	events, cancel := sys.Telemetry().Events.Subscribe(8192)
	defer cancel()

	rep, err := sys.Replay(thrifty.ReplayOptions{
		From:          0,
		To:            4 * sim.Day,
		SampleEvery:   2 * time.Hour,
		EnableScaling: true,
		ScalerConfig:  thrifty.DefaultScalerConfig(0.999, plan.Config.R),
		TakeOver: &thrifty.TakeOver{
			Tenant:   victim,
			Start:    sim.Day,
			Interval: 3 * time.Second,
			ClassID:  "TPCH-Q1",
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	cancel()

	fmt.Printf("\nRT-TTP timeline of %s:\n", pick.ID)
	for i, s := range rep.Samples[pick.ID] {
		if i%4 != 0 {
			continue
		}
		bar := int(60 * s.RTTTP)
		fmt.Printf("  %v  %.4f  %s\n", s.At, s.RTTTP, stars(bar))
	}

	// The Fig 7.7 story, narrated by the event stream: the take-over, the
	// accumulating SLA violations, the RT-TTP dip, the scaling trigger, and
	// the recovery once the dedicated MPPDB takes the victim's queries.
	// Violations are folded into counts so the timeline stays readable.
	// Violations and repeated retries (e.g. scaling_failed every check while
	// the pool stays exhausted) are folded into counts so it stays readable.
	fmt.Println("\nSLA-event timeline (from the telemetry stream):")
	violations, repeats, last := 0, 0, ""
	flush := func() {
		if violations > 0 {
			fmt.Printf("  ... %d SLA violation(s)\n", violations)
			violations = 0
		}
		if repeats > 0 {
			fmt.Printf("  ... repeated %d more time(s)\n", repeats)
			repeats = 0
		}
	}
	for ev := range events {
		if ev.Type == telemetry.EventSLAViolation {
			if repeats > 0 {
				fmt.Printf("  ... repeated %d more time(s)\n", repeats)
				repeats = 0
			}
			violations++
			continue
		}
		key := string(ev.Type) + "|" + ev.Group + "|" + ev.Detail
		if key == last && violations == 0 {
			repeats++
			continue
		}
		flush()
		last = key
		fmt.Printf("  %s\n", ev.String())
	}
	flush()

	fmt.Println("\nper-tenant SLA attainment (from the /v1/slo accounting):")
	ok := 0
	report := sys.Telemetry().SLA.Report()
	for _, slo := range report {
		if slo.OK {
			ok++
		}
		if slo.Tenant == victim {
			fmt.Printf("  victim %s: met %d missed %d attainment %.4f worst %.1f× target\n",
				slo.Tenant, slo.Met, slo.Missed, slo.Attainment, slo.WorstNormalized)
		}
	}
	fmt.Printf("  %d of %d tenants at per-query attainment ≥ P\n", ok, len(report))
	fmt.Printf("\n%d queries replayed, %.2f%% met their SLA (telemetry: %.2f%%)\n",
		len(rep.Records), 100*rep.SLAAttainment(), 100*sys.Telemetry().SLA.Overall())
}

func stars(n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = '#'
	}
	return string(s)
}
