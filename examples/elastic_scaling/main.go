// Elastic scaling: the §7.5 / Figure 7.7 scenario. One tenant-group is
// deployed and its logged activity replayed; partway in we "take over" a
// tenant and submit queries continuously on its behalf. With the scaler
// armed, Thrifty detects the RT-TTP drop, identifies the over-active
// tenant, provisions a dedicated MPPDB (paying realistic startup +
// parallel-bulk-load time), and re-points the tenant — the group's RT-TTP
// recovers.
//
//	go run ./examples/elastic_scaling
package main

import (
	"fmt"
	"log"
	"time"

	thrifty "repro"
	"repro/internal/sim"
)

func main() {
	w, err := thrifty.GenerateWorkload(thrifty.WorkloadConfig{
		Tenants:          120,
		Days:             7,
		SessionsPerClass: 8,
		Seed:             11,
	})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := thrifty.PlanDeployment(w, thrifty.DefaultPlanConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Pick the biggest group and its first tenant as the victim.
	pick := plan.Groups[0]
	for _, g := range plan.Groups {
		if len(g.TenantIDs) > len(pick.TenantIDs) {
			pick = g
		}
	}
	victim := pick.TenantIDs[0]
	fmt.Printf("group %s: %d tenants on %d × %d-node MPPDBs; taking over %s at day 1\n",
		pick.ID, len(pick.TenantIDs), pick.Design.A, pick.Design.N1, victim)

	sys, err := thrifty.Deploy(w, plan, thrifty.DeployOptions{
		Immediate:    true,
		ParallelLoad: true,
		SpareNodes:   64,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Replay(thrifty.ReplayOptions{
		From:          0,
		To:            4 * sim.Day,
		SampleEvery:   2 * time.Hour,
		EnableScaling: true,
		ScalerConfig:  thrifty.DefaultScalerConfig(0.999, plan.Config.R),
		TakeOver: &thrifty.TakeOver{
			Tenant:   victim,
			Start:    sim.Day,
			Interval: 3 * time.Second,
			ClassID:  "TPCH-Q1",
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nRT-TTP timeline of %s:\n", pick.ID)
	for i, s := range rep.Samples[pick.ID] {
		if i%4 != 0 {
			continue
		}
		bar := int(60 * s.RTTTP)
		fmt.Printf("  %v  %.4f  %s\n", s.At, s.RTTTP, stars(bar))
	}

	fmt.Println("\nscaling events:")
	if len(rep.ScalingEvents) == 0 {
		fmt.Println("  (none)")
	}
	for _, ev := range rep.ScalingEvents {
		if ev.Err != "" {
			fmt.Printf("  %v  group %s FAILED: %s\n", ev.Detected, ev.Group, ev.Err)
			continue
		}
		fmt.Printf("  %v  RT-TTP %.4f below P → over-active %v\n", ev.Detected, ev.RTTTP, ev.OverActive)
		fmt.Printf("  %v  new %d-node MPPDB %s ready; queries re-pointed\n", ev.Ready, ev.Nodes, ev.MPPDB)
	}
	fmt.Printf("\n%d queries replayed, %.2f%% met their SLA\n", len(rep.Records), 100*rep.SLAAttainment())
}

func stars(n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = '#'
	}
	return string(s)
}
