// Consolidation: the provider-side story. A larger MPPDBaaS population is
// planned with the two-step tenant-grouping heuristic and with the FFD
// baseline, across replication factors — reproducing the trade-offs of the
// paper's chapter 7 on a laptop-scale population.
//
//	go run ./examples/consolidation [-tenants 800]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	thrifty "repro"
	"repro/internal/advisor"
	"repro/internal/epoch"
	"repro/internal/workload"
)

func main() {
	tenants := flag.Int("tenants", 800, "population size")
	flag.Parse()

	w, err := thrifty.GenerateWorkload(thrifty.WorkloadConfig{
		Tenants:          *tenants,
		Days:             7,
		SessionsPerClass: 10,
		Seed:             7,
	})
	if err != nil {
		log.Fatal(err)
	}
	grid, err := epoch.NewGrid(workload.MonitorEpoch, w.Horizon)
	if err != nil {
		log.Fatal(err)
	}
	st := workload.ComputeStats(w.Logs, grid)
	fmt.Printf("population: %d tenants, active tenant ratio %.1f%% (per-minute), peak %d concurrent\n\n",
		st.Tenants, 100*st.MeanActiveRatio, st.MaxActive)

	fmt.Printf("%-8s %-8s %10s %10s %10s %10s %10s\n",
		"algo", "R", "requested", "used", "saved", "groups", "time")
	for _, algo := range []advisor.Algorithm{advisor.TwoStep, advisor.FFD} {
		for _, r := range []int{1, 2, 3, 4} {
			cfg := thrifty.DefaultPlanConfig()
			cfg.Algorithm = algo
			cfg.R = r
			start := time.Now()
			plan, err := thrifty.PlanDeployment(w, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %-8d %10d %10d %9.1f%% %10d %10v\n",
				string(algo), r, plan.RequestedNodes, plan.NodesUsed(),
				100*plan.Effectiveness(), len(plan.Groups),
				time.Since(start).Round(time.Millisecond))
		}
	}
	fmt.Println("\nNote: the paper's full-scale result (5000 tenants, 30-day logs) serves")
	fmt.Println("all tenants on ~18.7% of requested nodes at R=3, P=99.9%; run")
	fmt.Println("`go run ./cmd/thrifty-experiments -scale full -only headline` to reproduce it.")
}
