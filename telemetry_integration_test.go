package thrifty

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/sim"
)

// replayOnce deploys the small workload and replays one day with scaling
// armed, returning the system and its report. Identical inputs every call —
// the determinism tests diff two of these runs.
func replayOnce(t *testing.T) (*System, *ReplayReport) {
	t.Helper()
	w := smallWorkload(t)
	plan, err := PlanDeployment(w, DefaultPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Deploy(w, plan, DeployOptions{Immediate: true, ParallelLoad: true, SpareNodes: 64})
	if err != nil {
		t.Fatal(err)
	}
	victim := plan.Groups[0].TenantIDs[0]
	rep, err := sys.Replay(ReplayOptions{
		From:          0,
		To:            sim.Day,
		SampleEvery:   2 * time.Hour,
		EnableScaling: true,
		ScalerConfig:  DefaultScalerConfig(0.999, plan.Config.R),
		TakeOver: &TakeOver{
			Tenant:   victim,
			Start:    6 * sim.Hour,
			Interval: 3 * time.Second,
			ClassID:  "TPCH-Q1",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, rep
}

// TestTelemetryDeterminism runs the same seeded simulation twice and demands
// byte-identical trace and event output — the property that makes telemetry
// usable as experiment evidence (ISSUE acceptance criterion).
func TestTelemetryDeterminism(t *testing.T) {
	var traces, events [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		sys, _ := replayOnce(t)
		if err := sys.Telemetry().Tracer.Dump(&traces[i]); err != nil {
			t.Fatal(err)
		}
		if err := sys.Telemetry().Events.Dump(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if traces[0].Len() == 0 {
		t.Fatal("empty trace dump")
	}
	if !bytes.Equal(traces[0].Bytes(), traces[1].Bytes()) {
		t.Error("trace dumps differ between identical runs")
	}
	if events[0].Len() == 0 {
		t.Fatal("empty event dump")
	}
	if !bytes.Equal(events[0].Bytes(), events[1].Bytes()) {
		t.Error("event dumps differ between identical runs")
	}
}

// TestSLOMatchesReplayAccounting cross-checks /v1/slo against the replay
// report's own per-record accounting on the same log (ISSUE acceptance
// criterion): same per-tenant met/missed tallies, same overall attainment.
func TestSLOMatchesReplayAccounting(t *testing.T) {
	sys, rep := replayOnce(t)
	h, err := sys.Handler(ServeOptions{TimeScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("slo status %d", resp.StatusCode)
	}
	var slo struct {
		P       float64 `json:"p"`
		Overall float64 `json:"overall_attainment"`
		Tenants []struct {
			Tenant string `json:"tenant"`
			Met    int64  `json:"met"`
			Missed int64  `json:"missed"`
		} `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&slo); err != nil {
		t.Fatal(err)
	}

	// Replay's own accounting, from the raw records.
	type counts struct{ met, missed int64 }
	want := map[string]*counts{}
	for _, rec := range rep.Records {
		c := want[rec.Tenant]
		if c == nil {
			c = &counts{}
			want[rec.Tenant] = c
		}
		if rec.SLAMet() {
			c.met++
		} else {
			c.missed++
		}
	}
	if len(slo.Tenants) != len(want) {
		t.Fatalf("slo reports %d tenants, replay saw %d", len(slo.Tenants), len(want))
	}
	for _, ten := range slo.Tenants {
		c := want[ten.Tenant]
		if c == nil {
			t.Errorf("slo tenant %s unknown to replay", ten.Tenant)
			continue
		}
		if ten.Met != c.met || ten.Missed != c.missed {
			t.Errorf("tenant %s: slo %d/%d, replay %d/%d",
				ten.Tenant, ten.Met, ten.Missed, c.met, c.missed)
		}
	}
	if got, want := slo.Overall, rep.SLAAttainment(); got != want {
		t.Errorf("overall attainment: slo %v, replay %v", got, want)
	}
	if slo.P != 0.999 {
		t.Errorf("p = %v", slo.P)
	}
}

// TestTelemetryEndToEnd sanity-checks the whole wiring: counters move, the
// event stream saw the take-over and the scaler, and spans cover queries.
func TestTelemetryEndToEnd(t *testing.T) {
	sys, rep := replayOnce(t)
	hub := sys.Telemetry()

	var routed int64
	for _, mv := range hub.Registry.Snapshot() {
		if mv.Name == "thrifty_router_routed_total" {
			routed += int64(mv.Value)
		}
	}
	if want := int64(rep.Submitted - rep.SubmitErrors); routed != want {
		t.Errorf("routed counter %d, want %d", routed, want)
	}

	types := map[string]bool{}
	for _, ev := range hub.Events.Recent(0) {
		types[string(ev.Type)] = true
	}
	if !types["take_over"] {
		t.Errorf("no take_over event; saw %v", types)
	}

	spans := hub.Tracer.Finished()
	if len(spans) == 0 {
		t.Fatal("no spans")
	}
	names := map[string]int{}
	for _, s := range spans {
		names[s.Name]++
		if s.End < s.Start {
			t.Fatalf("span %+v ends before it starts", s)
		}
	}
	if names["query"] == 0 || names["route"] == 0 || names["execute"] == 0 {
		t.Errorf("span names = %v", names)
	}
}
