// Command thrifty-experiments regenerates every table and figure of the
// paper's evaluation (Fig 1.1, Table 5.1, Figs 7.1–7.7, and the headline
// consolidation result).
//
// Usage:
//
//	thrifty-experiments                       # all experiments, small scale
//	thrifty-experiments -scale full           # paper-scale parameters
//	thrifty-experiments -only fig7.4,headline # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

type experiment struct {
	name string
	run  func(env *experiments.Env) ([]*experiments.Table, error)
	// needsEnv is false for substrate-only experiments.
	needsEnv bool
}

func table1(f func(*experiments.Env) (*experiments.Table, error)) func(*experiments.Env) ([]*experiments.Table, error) {
	return func(env *experiments.Env) ([]*experiments.Table, error) {
		t, err := f(env)
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{t}, nil
	}
}

var all = []experiment{
	{"fig1.1a", func(*experiments.Env) ([]*experiments.Table, error) {
		t, err := experiments.Fig11aSpeedup()
		return []*experiments.Table{t}, err
	}, false},
	{"fig1.1b", func(*experiments.Env) ([]*experiments.Table, error) {
		t, err := experiments.Fig11bLatency()
		return []*experiments.Table{t}, err
	}, false},
	{"fig1.1c", func(*experiments.Env) ([]*experiments.Table, error) {
		t, err := experiments.Fig11cNonLinear()
		return []*experiments.Table{t}, err
	}, false},
	{"table5.1", func(*experiments.Env) ([]*experiments.Table, error) {
		return []*experiments.Table{experiments.Table51Provisioning()}, nil
	}, false},
	{"fig7.1", table1(experiments.Fig71EpochSize), true},
	{"fig7.2", table1(experiments.Fig72Tenants), true},
	{"fig7.3", table1(experiments.Fig73Theta), true},
	{"fig7.4", table1(experiments.Fig74Replication), true},
	{"fig7.5", table1(experiments.Fig75SLA), true},
	{"fig7.6", table1(experiments.Fig76ActiveRatio), true},
	{"fig7.7", func(env *experiments.Env) ([]*experiments.Table, error) {
		res, err := experiments.Fig77ElasticScaling(env)
		if err != nil {
			return nil, err
		}
		return res.Tables(), nil
	}, true},
	{"chaos", experiments.ChaosRecovery, true},
	{"grayfail", experiments.GrayFail, true},
	{"domainfail", experiments.DomainFail, true},
	{"overload", experiments.OverloadStorm, true},
	{"drift", experiments.Drift, true},
	{"ablation", table1(experiments.AblationSolvers), true},
	{"sharing", experiments.Sharing, true},
	{"divergent", table1(experiments.DivergentDesign), true},
	{"headline", func(env *experiments.Env) ([]*experiments.Table, error) {
		res, err := experiments.Headline(env)
		if err != nil {
			return nil, err
		}
		return res.Tables(), nil
	}, true},
}

func main() {
	var (
		scaleName = flag.String("scale", "small", `experiment scale: "small" or "full" (paper parameters)`)
		only      = flag.String("only", "", "comma-separated experiment names (default: all)")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("solver-workers", 0, "grouping-solver parallelism (0 = serial; tables are identical at any value)")
		list      = flag.Bool("list", false, "list experiment names and exit")
	)
	flag.Parse()
	if *workers < 0 {
		fatal("-solver-workers must be >= 0")
	}
	experiments.SolverWorkers = *workers

	if *list {
		for _, e := range all {
			fmt.Println(e.name)
		}
		return
	}
	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.Small
	case "full":
		scale = experiments.Full
	default:
		fatal("unknown scale %q", *scaleName)
	}

	selected := all
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		selected = nil
		for _, e := range all {
			if want[e.name] {
				selected = append(selected, e)
				delete(want, e.name)
			}
		}
		for n := range want {
			fatal("unknown experiment %q (use -list)", n)
		}
	}

	needsEnv := false
	for _, e := range selected {
		needsEnv = needsEnv || e.needsEnv
	}
	var env *experiments.Env
	if needsEnv {
		fmt.Fprintf(os.Stderr, "building %s-scale environment (T=%d, %d days, %d sessions/class)...\n",
			scale.Name, scale.Tenants, scale.Days, scale.SessionsPerClass)
		start := time.Now()
		var err error
		env, err = experiments.NewEnv(scale, *seed)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "environment ready in %v\n\n", time.Since(start).Round(time.Millisecond))
	}

	for _, e := range selected {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s...\n", e.name)
		tables, err := e.run(env)
		if err != nil {
			fatal("%s: %v", e.name, err)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		fmt.Fprintf(os.Stderr, "%s done in %v\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "thrifty-experiments: "+format+"\n", args...)
	os.Exit(1)
}
