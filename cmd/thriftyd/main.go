// Command thriftyd runs the Thrifty MPPDB-as-a-Service front end: it
// generates a tenant population, plans and deploys the consolidated
// cluster, and serves the HTTP API (query submission, plan and group
// inspection, tenant registration).
//
// The execution substrate is the virtual-time MPPDB simulator, paced
// against the wall clock (default 60 virtual seconds per wall second).
//
// Usage:
//
//	thriftyd -addr :8080 -tenants 200
//	curl -s localhost:8080/v1/plan | jq .
//	curl -s -XPOST localhost:8080/v1/queries -d '{"tenant":"T0000","query":"TPCH-Q1"}'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	thrifty "repro"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		tenants   = flag.Int("tenants", 200, "number of tenants")
		days      = flag.Int("days", 7, "history horizon used for planning")
		r         = flag.Int("r", 3, "replication factor R")
		p         = flag.Float64("p", 0.999, "performance SLA guarantee P")
		timeScale = flag.Float64("timescale", 60, "virtual seconds per wall second")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	fmt.Fprintf(os.Stderr, "thriftyd: generating %d tenants (%d-day history)...\n", *tenants, *days)
	w, err := thrifty.GenerateWorkload(thrifty.WorkloadConfig{
		Tenants:          *tenants,
		Days:             *days,
		SessionsPerClass: 10,
		Seed:             *seed,
	})
	if err != nil {
		fatal("%v", err)
	}

	pcfg := thrifty.DefaultPlanConfig()
	pcfg.R = *r
	pcfg.P = *p
	fmt.Fprintf(os.Stderr, "thriftyd: planning deployment (R=%d, P=%.4g%%)...\n", *r, 100**p)
	start := time.Now()
	plan, err := thrifty.PlanDeployment(w, pcfg)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "thriftyd: %d groups on %d of %d requested nodes (%.1f%% saved) in %v\n",
		len(plan.Groups), plan.NodesUsed(), plan.RequestedNodes,
		100*plan.Effectiveness(), time.Since(start).Round(time.Millisecond))

	sys, err := thrifty.Deploy(w, plan, thrifty.DeployOptions{
		Immediate:    true,
		ParallelLoad: true,
		SpareNodes:   64,
	})
	if err != nil {
		fatal("%v", err)
	}
	h, err := sys.Handler(thrifty.ServeOptions{TimeScale: *timeScale})
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "thriftyd: serving MPPDBaaS on %s (time scale %g×)\n", *addr, *timeScale)
	if err := http.ListenAndServe(*addr, h); err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "thriftyd: "+format+"\n", args...)
	os.Exit(1)
}
