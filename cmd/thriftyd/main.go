// Command thriftyd runs the Thrifty MPPDB-as-a-Service front end: it
// generates a tenant population, plans and deploys the consolidated
// cluster, and serves the HTTP API (query submission, plan and group
// inspection, tenant registration, observability).
//
// The execution substrate is the virtual-time MPPDB simulator, paced
// against the wall clock (default 60 virtual seconds per wall second).
//
// Observability: unless -metrics=false, GET /metrics serves the telemetry
// registry in Prometheus text format (routing decisions, in-flight queries,
// per-MPPDB service/sojourn histograms, RT-TTP, SLA counters);
// GET /v1/events streams the recent SLA-event log and GET /v1/slo the
// per-tenant SLA attainment against P.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// (including long scrapes and event reads) get up to 10 s to complete
// before the listener is torn down.
//
// Usage:
//
//	thriftyd -addr :8080 -tenants 200
//	curl -s localhost:8080/v1/plan | jq .
//	curl -s -XPOST localhost:8080/v1/queries -d '{"tenant":"T0000","query":"TPCH-Q1"}'
//	curl -s localhost:8080/metrics | grep thrifty_
//	curl -s localhost:8080/v1/slo | jq .
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	thrifty "repro"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		tenants   = flag.Int("tenants", 200, "number of tenants")
		days      = flag.Int("days", 7, "history horizon used for planning")
		r         = flag.Int("r", 3, "replication factor R")
		p         = flag.Float64("p", 0.999, "performance SLA guarantee P")
		timeScale = flag.Float64("timescale", 60, "virtual seconds per wall second")
		seed      = flag.Int64("seed", 1, "random seed")
		metrics   = flag.Bool("metrics", true, "expose Prometheus text metrics at /metrics")
		sharded   = flag.Bool("sharded", true, "per-group clock domains: submits to different tenant-groups proceed in parallel")
		recovery  = flag.Bool("recovery", true, "arm an autonomous recovery controller per tenant-group (heartbeat failure detection, pool swap, Table 5.1 reload)")

		domains        = flag.Int("domains", 1, "failure domains (racks/zones) the pool is split across; >1 enables spread-aware placement")
		triageOn       = flag.Bool("triage", false, "arm the cluster-wide scarcity triage: exhausted recoveries queue claims ranked by SLA-at-risk instead of uncoordinated backoff (requires -recovery)")
		triageInterval = flag.Duration("triage-interval", time.Minute, "virtual-time poll period of queued triage claims")

		onlineOn       = flag.Bool("online", false, "arm continuous online re-consolidation (drift detection, local repair, live migrations); forces a shared clock domain")
		onlineInterval = flag.Duration("online-interval", 15*time.Minute, "virtual-time control period of the online loop")

		admissionOn       = flag.Bool("admission", true, "arm overload protection per tenant-group (contract enforcement, bounded admission queue, brownout)")
		admissionHeadroom = flag.Float64("admission-headroom", 2, "factor applied to each tenant's logged arrival rate/burst when deriving its contract")
		admissionQueue    = flag.Int("admission-queue", 32, "bound of the per-group admission queue (submits waiting for a retry slot)")

		grayOn           = flag.Bool("gray", false, "arm fail-slow (gray failure) detection per tenant-group: peer-relative latency anomaly detection with a hedge → drain-and-replace ladder")
		grayInterval     = flag.Duration("gray-interval", time.Minute, "virtual-time beat of the gray detector")
		graySuspect      = flag.Float64("gray-suspect", 1.5, "suspicion threshold: an instance's mean completion slowdown vs the peer median")
		grayConfirmBeats = flag.Int("gray-confirm-beats", 3, "consecutive suspect beats before a suspected (and already hedged) gray instance is confirmed")
		grayDrainAfter   = flag.Duration("gray-drain-after", 10*time.Minute, "how long a confirmed-gray instance is hedged before it is drained and replaced")
		grayStrikeDecay  = flag.Duration("gray-strike-decay", 6*time.Hour, "clear stretch after which an instance's strike count is forgotten")

		sharingOn = flag.Bool("sharing", false, "enable shared-work execution: concurrent same-class queries merge into one shared scan per MPPDB, and the advisor packs for the credited capacity")

		submitRetries = flag.Int("submit-retries", 3, "retries of a transiently failed submit before 504 (negative disables)")
		submitBackoff = flag.Duration("submit-backoff", 30*time.Second, "virtual-time wait between submit attempts")
		submitTimeout = flag.Duration("submit-timeout", 5*time.Minute, "virtual-time budget per submit before 504")
		noCoalesce    = flag.Bool("no-coalesce", false, "disable server-side coalescing of concurrent submits into per-group batches")
		maxBatch      = flag.Int("max-batch", 64, "max coalesced submits per batched routing call")
	)
	flag.Parse()

	fmt.Fprintf(os.Stderr, "thriftyd: generating %d tenants (%d-day history)...\n", *tenants, *days)
	w, err := thrifty.GenerateWorkload(thrifty.WorkloadConfig{
		Tenants:          *tenants,
		Days:             *days,
		SessionsPerClass: 10,
		Seed:             *seed,
	})
	if err != nil {
		fatal("%v", err)
	}

	pcfg := thrifty.DefaultPlanConfig()
	pcfg.R = *r
	pcfg.P = *p
	pcfg.Sharing = *sharingOn
	fmt.Fprintf(os.Stderr, "thriftyd: planning deployment (R=%d, P=%.4g%%)...\n", *r, 100**p)
	start := time.Now()
	plan, err := thrifty.PlanDeployment(w, pcfg)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "thriftyd: %d groups on %d of %d requested nodes (%.1f%% saved) in %v\n",
		len(plan.Groups), plan.NodesUsed(), plan.RequestedNodes,
		100*plan.Effectiveness(), time.Since(start).Round(time.Millisecond))

	if *onlineOn && *sharded {
		fmt.Fprintln(os.Stderr, "thriftyd: -online requires one shared clock domain; overriding -sharded=false")
		*sharded = false
	}
	dopts := thrifty.DeployOptions{
		Immediate:    true,
		ParallelLoad: true,
		SpareNodes:   64,
		Sharded:      *sharded,
		Domains:      *domains,
		Sharing:      *sharingOn,
	}
	if *recovery {
		rcfg := thrifty.DefaultRecoveryConfig()
		dopts.Recovery = &rcfg
	}
	if *triageOn {
		if !*recovery {
			fatal("-triage requires -recovery")
		}
		tcfg := thrifty.DefaultTriageConfig()
		tcfg.Interval = *triageInterval
		dopts.Triage = &tcfg
	}
	if *admissionOn {
		acfg := thrifty.DefaultAdmissionConfig()
		acfg.Headroom = *admissionHeadroom
		acfg.MaxQueue = *admissionQueue
		dopts.Admission = &acfg
	}
	if *grayOn {
		gcfg := thrifty.DefaultGrayConfig()
		gcfg.Interval = *grayInterval
		gcfg.SuspectRatio = *graySuspect
		gcfg.ConfirmBeats = *grayConfirmBeats
		gcfg.DrainAfter = *grayDrainAfter
		gcfg.StrikeDecay = *grayStrikeDecay
		dopts.Gray = &gcfg
	}
	sys, err := thrifty.Deploy(w, plan, dopts)
	if err != nil {
		fatal("%v", err)
	}
	if *onlineOn {
		ocfg := thrifty.DefaultOnlineConfig(pcfg, w.Horizon)
		ocfg.Interval = *onlineInterval
		if _, err := sys.EnableOnline(ocfg); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "thriftyd: online re-consolidation armed (control period %v)\n", *onlineInterval)
	}
	h, err := sys.Handler(thrifty.ServeOptions{
		TimeScale:       *timeScale,
		DisableMetrics:  !*metrics,
		SubmitRetries:   *submitRetries,
		SubmitBackoff:   *submitBackoff,
		SubmitTimeout:   *submitTimeout,
		DisableCoalesce: *noCoalesce,
		MaxBatch:        *maxBatch,
	})
	if err != nil {
		fatal("%v", err)
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests so scrapes
	// and event reads are never cut off mid-response.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: *addr, Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "thriftyd: serving MPPDBaaS on %s (time scale %g×, metrics %v, sharded %v, recovery %v, admission %v, gray %v, online %v, sharing %v)\n",
		*addr, *timeScale, *metrics, *sharded, *recovery, *admissionOn, *grayOn, *onlineOn, *sharingOn)

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal("%v", err)
		}
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "thriftyd: shutting down (draining in-flight requests)...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatal("shutdown: %v", err)
		}
	}
	fmt.Fprintln(os.Stderr, "thriftyd: bye")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "thriftyd: "+format+"\n", args...)
	os.Exit(1)
}
