// Command thrifty-advisor computes a deployment plan — cluster design plus
// tenant placement — from tenant activity logs (thesis §3b), using either
// the two-step tenant-grouping heuristic or the FFD baseline.
//
// Usage:
//
//	thrifty-loggen -tenants 2000 -o logs.json
//	thrifty-advisor -logs logs.json -r 3 -p 0.999
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/advisor"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		logsPath = flag.String("logs", "", "tenant logs JSON from thrifty-loggen (required)")
		r        = flag.Int("r", 3, "replication factor R")
		p        = flag.Float64("p", 0.999, "performance SLA guarantee P in (0,1]")
		epochSec = flag.Float64("epoch", 3, "epoch size E in seconds")
		algo     = flag.String("algo", "2-step", `grouping algorithm: "2-step" or "ffd"`)
		uextra   = flag.Int("uextra", 0, "extra nodes for every tuning MPPDB G0 (manual tuning, §6)")
		workers  = flag.Int("solver-workers", 0, "grouping-solver parallelism (0 = serial; the plan is identical at any value)")
		verbose  = flag.Bool("v", false, "print every tenant-group")
	)
	flag.Parse()
	if *logsPath == "" {
		fatal("-logs is required")
	}
	f, err := os.Open(*logsPath)
	if err != nil {
		fatal("%v", err)
	}
	logs, days, err := workload.ReadJSON(f)
	f.Close()
	if err != nil {
		fatal("%v", err)
	}

	cfg := advisor.DefaultConfig()
	cfg.R = *r
	cfg.P = *p
	cfg.Epoch = sim.Time(*epochSec * float64(sim.Second))
	cfg.UExtra = *uextra
	cfg.SolverWorkers = *workers
	switch *algo {
	case "2-step":
		cfg.Algorithm = advisor.TwoStep
	case "ffd":
		cfg.Algorithm = advisor.FFD
	default:
		fatal("unknown algorithm %q", *algo)
	}
	adv, err := advisor.New(cfg)
	if err != nil {
		fatal("%v", err)
	}
	start := time.Now()
	plan, err := adv.Plan(logs, sim.Time(days)*sim.Day)
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("deployment plan (%s, R=%d, P=%.4g%%, E=%gs)\n",
		plan.Algorithm, cfg.R, 100*cfg.P, *epochSec)
	fmt.Printf("  tenants consolidated:    %d (+%d excluded)\n",
		len(logs)-len(plan.Excluded), len(plan.Excluded))
	fmt.Printf("  nodes requested:         %d\n", plan.RequestedNodes)
	fmt.Printf("  nodes used:              %d (%.1f%% of requested)\n",
		plan.NodesUsed(), 100*float64(plan.NodesUsed())/float64(max(plan.RequestedNodes, 1)))
	fmt.Printf("  consolidation saving:    %.1f%%\n", 100*plan.Effectiveness())
	fmt.Printf("  tenant-groups:           %d (mean %.1f tenants)\n",
		len(plan.Groups), plan.MeanGroupSize())
	fmt.Printf("  planning time:           %v\n", time.Since(start).Round(time.Millisecond))

	if len(plan.Excluded) > 0 {
		fmt.Println("excluded tenants (dedicated service plan):")
		for _, e := range plan.Excluded {
			fmt.Printf("  %-8s %s\n", e.TenantID, e.Reason)
		}
	}
	if *verbose {
		groups := append([]advisor.PlannedGroup(nil), plan.Groups...)
		sort.Slice(groups, func(i, j int) bool { return groups[i].ID < groups[j].ID })
		for _, g := range groups {
			fmt.Printf("%s: A=%d × %d-node MPPDBs (U=%d), %d tenants, TTP=%.4f, peak %d active\n",
				g.ID, g.Design.A, g.Design.N1, g.Design.U, len(g.TenantIDs), g.TTP, g.MaxActive)
			fmt.Printf("   tenants: %v\n", g.TenantIDs)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "thrifty-advisor: "+format+"\n", args...)
	os.Exit(1)
}
