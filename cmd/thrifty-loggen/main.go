// Command thrifty-loggen generates close-to-realistic MPPDBaaS tenant
// activity logs using the paper's two-step methodology (§7.1) and writes
// them as JSON for thrifty-advisor.
//
// Usage:
//
//	thrifty-loggen -tenants 5000 -days 30 -theta 0.8 -o logs.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/epoch"
	"repro/internal/workload"

	thrifty "repro"
)

func main() {
	var (
		tenants  = flag.Int("tenants", 1000, "number of tenants T")
		theta    = flag.Float64("theta", 0.8, "Zipf skew θ of tenant sizes, in (0,1)")
		days     = flag.Int("days", 30, "log horizon in days")
		sessions = flag.Int("sessions", 20, "step-1 session logs per size class (paper: 100)")
		variant  = flag.Int("variant", 0, "activity variant: 0=default 1=north-america 2=na-no-lunch 3=single-zone")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "-", "output file (default stdout)")
	)
	flag.Parse()

	if *variant < 0 || *variant > 3 {
		fatal("variant must be 0..3")
	}
	w, err := thrifty.GenerateWorkload(thrifty.WorkloadConfig{
		Tenants:          *tenants,
		Theta:            *theta,
		Days:             *days,
		SessionsPerClass: *sessions,
		Variant:          workload.HighActivityVariant(*variant),
		Seed:             *seed,
	})
	if err != nil {
		fatal("%v", err)
	}

	dst := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		dst = f
	}
	if err := workload.WriteJSON(dst, w.Logs, *days); err != nil {
		fatal("%v", err)
	}

	grid, err := epoch.NewGrid(workload.MonitorEpoch, w.Horizon)
	if err != nil {
		fatal("%v", err)
	}
	st := workload.ComputeStats(w.Logs, grid)
	fmt.Fprintf(os.Stderr, "generated %d tenants over %d days (%s): active tenant ratio %.1f%%, peak %d concurrent\n",
		st.Tenants, *days, workload.HighActivityVariant(*variant), 100*st.MeanActiveRatio, st.MaxActive)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "thrifty-loggen: "+format+"\n", args...)
	os.Exit(1)
}
