package thrifty

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/runtime"
	"repro/internal/sim"
)

// batchSystem deploys the small workload for the batch-equivalence tests.
func batchSystem(t *testing.T, sharded bool) (*System, *Workload) {
	t.Helper()
	w := smallWorkload(t)
	plan, err := PlanDeployment(w, DefaultPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Deploy(w, plan, DeployOptions{Immediate: true, SpareNodes: 64, Sharded: sharded})
	if err != nil {
		t.Fatal(err)
	}
	return sys, w
}

// submitAllDump submits two TPCH-Q6 queries per group member — either as one
// SubmitBatchAt per group or as one call per query — drains the domains past
// every completion, and returns the telemetry dumps plus flattened outcomes.
func submitAllDump(t *testing.T, sharded, batched bool) (traces, events string, outs []runtime.BatchOutcome) {
	t.Helper()
	sys, w := batchSystem(t, sharded)
	class, ok := w.Catalog.ByID("TPCH-Q6")
	if !ok {
		t.Fatal("TPCH-Q6 missing from catalog")
	}
	pol := runtime.RetryPolicy{MaxRetries: 2, Backoff: 15 * time.Second, Timeout: time.Minute}
	at := sim.Hour
	for _, g := range sys.Deployment.Groups() {
		var items []runtime.BatchItem
		for _, m := range g.Members {
			items = append(items,
				runtime.BatchItem{Tenant: m.ID, Class: class},
				runtime.BatchItem{Tenant: m.ID, Class: class})
		}
		res := make([]runtime.BatchOutcome, len(items))
		if batched {
			g.SubmitBatchAt(at, items, res, pol)
		} else {
			for i := range items {
				g.SubmitBatchAt(at, items[i:i+1], res[i:i+1], pol)
			}
		}
		outs = append(outs, res...)
	}
	for _, g := range sys.Deployment.Groups() {
		g.Domain().Advance(at+sim.Day, func(*sim.Engine) {})
	}
	var tb, eb bytes.Buffer
	if err := sys.Telemetry().Tracer.Dump(&tb); err != nil {
		t.Fatal(err)
	}
	if err := sys.Telemetry().Events.Dump(&eb); err != nil {
		t.Fatal(err)
	}
	return tb.String(), eb.String(), outs
}

// testBatchEquivalence pins the batch submit path to the per-query one: the
// same queries at the same virtual instant must yield byte-identical
// telemetry and identical outcomes whether they arrive one SubmitBatchAt per
// group or one call per query.
func testBatchEquivalence(t *testing.T, sharded bool) {
	seqT, seqE, seqO := submitAllDump(t, sharded, false)
	batT, batE, batO := submitAllDump(t, sharded, true)
	if seqT == "" {
		t.Fatal("empty trace dump")
	}
	if seqT != batT {
		t.Error("trace dumps differ between per-query and batched submits")
	}
	if seqE != batE {
		t.Error("event dumps differ between per-query and batched submits")
	}
	if len(seqO) != len(batO) {
		t.Fatalf("outcome counts differ: %d vs %d", len(seqO), len(batO))
	}
	for i := range seqO {
		if seqO[i].DB != batO[i].DB || seqO[i].Retries != batO[i].Retries ||
			(seqO[i].Err == nil) != (batO[i].Err == nil) {
			t.Errorf("outcome %d differs: %+v vs %+v", i, seqO[i], batO[i])
		}
	}
}

// TestBatchSubmitEquivalenceShared: shared clock domain.
func TestBatchSubmitEquivalenceShared(t *testing.T) { testBatchEquivalence(t, false) }

// TestBatchSubmitEquivalenceSharded: per-group clock domains.
func TestBatchSubmitEquivalenceSharded(t *testing.T) { testBatchEquivalence(t, true) }
