package thrifty

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates its experiment at the Small scale (laptop-friendly: 400
// tenants, 7-day logs) and reports the headline metric as a custom unit so
// `go test -bench=. -benchmem` doubles as a results table. The full-scale
// (paper-parameter) runs are `go run ./cmd/thrifty-experiments -scale full`.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
	"repro/internal/runtime"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/tenant"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
)

// env builds the Small-scale environment once for all benchmarks (library
// collection dominates set-up cost).
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = experiments.NewEnv(experiments.Small, 1)
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

// cell parses a numeric table cell like "81.3%" or "6.86".
func cell(b *testing.B, s string) float64 {
	b.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "×")
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("parse %q: %v", s, err)
	}
	return f
}

// BenchmarkFig1_1a_QuerySpeedup regenerates Figure 1.1a: TPC-H Q1 speedup
// under single-tenant, sequential, and concurrent multi-tenancy.
func BenchmarkFig1_1a_QuerySpeedup(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig11aSpeedup()
		if err != nil {
			b.Fatal(err)
		}
		last = cell(b, t.Rows[len(t.Rows)-1][1]) // 1T speedup at 8 nodes
	}
	b.ReportMetric(last, "speedup8n")
}

// BenchmarkFig1_1b_ConsolidatedLatency regenerates Figure 1.1b: Q1 latency
// for 4 × 2-node tenants hosted on one 6-node MPPDB (points A, B, C, E, F).
func BenchmarkFig1_1b_ConsolidatedLatency(b *testing.B) {
	var pointC float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig11bLatency()
		if err != nil {
			b.Fatal(err)
		}
		pointC = cell(b, t.Rows[2][3]) // C: 2 concurrently active vs SLA
	}
	b.ReportMetric(pointC, "pointC_vs_SLA")
}

// BenchmarkFig1_1c_NonLinearQuery regenerates Figure 1.1c: TPC-H Q19's
// plateauing speedup.
func BenchmarkFig1_1c_NonLinearQuery(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig11cNonLinear()
		if err != nil {
			b.Fatal(err)
		}
		last = cell(b, t.Rows[len(t.Rows)-1][1])
	}
	b.ReportMetric(last, "speedup8n")
}

// BenchmarkTable5_1_Provisioning regenerates Table 5.1: MPPDB start/init and
// bulk-load times.
func BenchmarkTable5_1_Provisioning(b *testing.B) {
	var loadSec float64
	for i := 0; i < b.N; i++ {
		t := experiments.Table51Provisioning()
		loadSec = cell(b, strings.TrimSuffix(t.Rows[0][3], "s"))
	}
	b.ReportMetric(loadSec, "load200GB_s")
}

// benchSweep runs one Fig 7.x sweep and reports the 2-step effectiveness of
// the named row.
func benchSweep(b *testing.B, run func(*experiments.Env) (*experiments.Table, error), rowLabel string) {
	e := env(b)
	var eff float64
	for i := 0; i < b.N; i++ {
		t, err := run(e)
		if err != nil {
			b.Fatal(err)
		}
		found := false
		for _, row := range t.Rows {
			if row[0] == rowLabel {
				eff = cell(b, row[2])
				found = true
				break
			}
		}
		if !found {
			b.Fatalf("row %q not in table %q", rowLabel, t.Title)
		}
	}
	b.ReportMetric(eff, "%eff_2step")
}

// BenchmarkFig7_1_EpochSize regenerates Figure 7.1 (effectiveness, group
// size, runtime vs epoch size E); reports effectiveness at the default 3s.
func BenchmarkFig7_1_EpochSize(b *testing.B) {
	benchSweep(b, experiments.Fig71EpochSize, "3s")
}

// BenchmarkFig7_2_NumTenants regenerates Figure 7.2 (varying T); reports
// effectiveness at the scale's default population.
func BenchmarkFig7_2_NumTenants(b *testing.B) {
	benchSweep(b, experiments.Fig72Tenants, strconv.Itoa(experiments.Small.Tenants))
}

// BenchmarkFig7_3_TenantDistribution regenerates Figure 7.3 (varying θ);
// reports effectiveness at θ=0.8.
func BenchmarkFig7_3_TenantDistribution(b *testing.B) {
	benchSweep(b, experiments.Fig73Theta, "0.80")
}

// BenchmarkFig7_4_ReplicationFactor regenerates Figure 7.4 (varying R);
// reports effectiveness at R=3.
func BenchmarkFig7_4_ReplicationFactor(b *testing.B) {
	benchSweep(b, experiments.Fig74Replication, "3")
}

// BenchmarkFig7_5_PerformanceSLA regenerates Figure 7.5 (varying P);
// reports effectiveness at P=99.9%.
func BenchmarkFig7_5_PerformanceSLA(b *testing.B) {
	benchSweep(b, experiments.Fig75SLA, "99.9%")
}

// BenchmarkFig7_6_ActiveRatio regenerates Figure 7.6 (higher active tenant
// ratios); reports effectiveness of the single-zone-no-lunch variant.
func BenchmarkFig7_6_ActiveRatio(b *testing.B) {
	benchSweep(b, experiments.Fig76ActiveRatio, "single-zone-no-lunch")
}

// BenchmarkFig7_7_ElasticScaling regenerates Figure 7.7: the take-over,
// detection, carve-out, recovery timeline (both runs); reports the number
// of scaling actions in the enabled run.
func BenchmarkFig7_7_ElasticScaling(b *testing.B) {
	e := env(b)
	var events float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig77ElasticScaling(e)
		if err != nil {
			b.Fatal(err)
		}
		events = float64(len(res.Events.Rows))
	}
	b.ReportMetric(events, "scale_events")
}

// BenchmarkAblation_Solvers dissects the 2-step heuristic's advantage:
// size-homogeneous grouping vs activity-aware selection vs neither, plus an
// exact-optimum reference on a tiny subsample.
func BenchmarkAblation_Solvers(b *testing.B) {
	e := env(b)
	var eff float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationSolvers(e)
		if err != nil {
			b.Fatal(err)
		}
		eff = cell(b, t.Rows[0][1])
	}
	b.ReportMetric(eff, "%eff_2step")
}

// benchServiceEnv deploys the small submit-bench population once per variant
// and returns the HTTP handler plus one tenant per group. The time scale is
// deliberately huge (ten virtual hours per wall second): virtual time then
// outruns the bench's open-loop submit rate, queries drain as fast as they
// arrive, and ns/op measures the steady-state submit path rather than the
// depth of an ever-growing in-flight queue.
func benchServiceEnv(b *testing.B, sharded bool) (http.Handler, []string) {
	b.Helper()
	w, err := GenerateWorkload(WorkloadConfig{Tenants: 64, Days: 2, SessionsPerClass: 4, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := PlanDeployment(w, DefaultPlanConfig())
	if err != nil {
		b.Fatal(err)
	}
	sys, err := Deploy(w, plan, DeployOptions{Immediate: true, Sharded: sharded})
	if err != nil {
		b.Fatal(err)
	}
	h, err := service.New(sys.Deployment, w.Catalog, plan,
		service.Config{TimeScale: 36000, DisableMetrics: true})
	if err != nil {
		b.Fatal(err)
	}
	groups := sys.Deployment.Groups()
	tenants := make([]string, len(groups))
	for i, g := range groups {
		tenants[i] = g.Plan.TenantIDs[0]
	}
	return h, tenants
}

// benchConcurrentSubmits drives POST /v1/queries from GOMAXPROCS goroutines,
// one tenant per group so concurrent requests target distinct tenant-groups.
// Shared mode funnels every group through one clock domain; sharded mode
// gives each its own, so distinct-group submits only contend on the topology
// RLock.
func benchConcurrentSubmits(b *testing.B, sharded bool) {
	h, tenants := benchServiceEnv(b, sharded)
	bodies := make([]string, len(tenants))
	for i, t := range tenants {
		bodies[i] = fmt.Sprintf(`{"tenant":%q,"query":"TPCH-Q6"}`, t)
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			body := bodies[int(next.Add(1))%len(bodies)]
			req := httptest.NewRequest(http.MethodPost, "/v1/queries", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusAccepted {
				b.Errorf("status %d: %s", rec.Code, rec.Body.String())
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(len(tenants)), "groups")
}

// benchBatchSubmits drives POST /v1/submit-batch: every op is one request
// carrying `batch` queries striped across all tenant-groups, so each group
// receives one SubmitBatchAt per request — one domain lock and one clock
// advance amortized over its share of the batch. ns/op is per request;
// "ns/query" is the per-query cost to compare against the single-submit
// benches.
func benchBatchSubmits(b *testing.B, sharded bool, batch int) {
	h, tenants := benchServiceEnv(b, sharded)
	var sb strings.Builder
	sb.WriteString(`{"queries":[`)
	for i := 0; i < batch; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"tenant":%q,"query":"TPCH-Q6"}`, tenants[i%len(tenants)])
	}
	sb.WriteString(`]}`)
	body := sb.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/submit-batch", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/query")
	b.ReportMetric(float64(batch), "batch")
}

// BenchmarkService_ConcurrentSubmits measures the service submit hot path:
// per-query singles (POST /v1/queries) and 64-query batches
// (POST /v1/submit-batch), each on a shared-domain deployment (every group
// behind one clock) and a sharded one (per-group clock domains).
// `make bench-service` persists the results to BENCH_service.json.
func BenchmarkService_ConcurrentSubmits(b *testing.B) {
	b.Run("shared", func(b *testing.B) { benchConcurrentSubmits(b, false) })
	b.Run("sharded", func(b *testing.B) { benchConcurrentSubmits(b, true) })
	b.Run("batch64-shared", func(b *testing.B) { benchBatchSubmits(b, false, 64) })
	b.Run("batch64-sharded", func(b *testing.B) { benchBatchSubmits(b, true, 64) })
}

// BenchmarkRuntime_BatchSubmit measures the runtime-layer batched submit
// path alone — no HTTP, no JSON: tenant refs interned once (as the service
// does at deploy time), then one SubmitBatchAt per 64-query batch against
// one tenant-group, advancing virtual time so queries drain between
// batches. Steady state allocates nothing per submit: spans, events, exec
// slots, and round scratch are all pooled. The residual B/op is the
// monitor's append-only query-record log — deliberate retention (it backs
// GET /v1/records and SLA attainment), amortized slice growth, not
// per-submit garbage; allocs/op stays at zero for whole 64-query batches.
func BenchmarkRuntime_BatchSubmit(b *testing.B) {
	w, err := GenerateWorkload(WorkloadConfig{Tenants: 64, Days: 2, SessionsPerClass: 4, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := PlanDeployment(w, DefaultPlanConfig())
	if err != nil {
		b.Fatal(err)
	}
	sys, err := Deploy(w, plan, DeployOptions{Immediate: true})
	if err != nil {
		b.Fatal(err)
	}
	g := sys.Deployment.Groups()[0]
	class, ok := w.Catalog.ByID("TPCH-Q6")
	if !ok {
		b.Fatal("TPCH-Q6 missing")
	}
	const batch = 64
	ids := g.Plan.TenantIDs
	items := make([]runtime.BatchItem, batch)
	for i := range items {
		id := ids[i%len(ids)]
		items[i] = runtime.BatchItem{Tenant: id, Class: class}
		if ref := g.Router.Ref(id); ref != tenant.NoRef {
			items[i].Ref, items[i].HasRef = ref, true
		}
	}
	outs := make([]runtime.BatchOutcome, batch)
	var pol runtime.RetryPolicy
	at := g.Domain().Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += 10 * sim.Minute
		g.SubmitBatchAt(at, items, outs, pol)
		for k := range outs {
			if outs[k].Err != nil {
				b.Fatal(outs[k].Err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/query")
	b.ReportMetric(batch, "batch")
}

// BenchmarkHeadline_Consolidation regenerates the banner result: nodes used
// as a fraction of nodes requested under default parameters (paper: 18.7%),
// plus the one-day SLA validation replay.
func BenchmarkHeadline_Consolidation(b *testing.B) {
	e := env(b)
	var usedPct float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Headline(e)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Summary.Rows {
			if row[0] == "nodes used / requested" {
				usedPct = cell(b, row[1])
			}
		}
	}
	b.ReportMetric(usedPct, "%used_of_requested")
}
